/**
 * @file
 * Unit tests for the RTGS algorithm layer: Eq. 7 importance scoring,
 * the adaptive mask-prune protocol with its dynamic interval rule, the
 * dynamic downsampling schedule, the baseline pruners, and the
 * Listing-1 runtime protocol.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hh"
#include "core/downsampling.hh"
#include "core/importance.hh"
#include "core/pruning.hh"
#include "core/rtgs_api.hh"

namespace rtgs::core
{

namespace
{

gs::CloudGrads
makeGrads(const std::vector<Real> &pos_norms,
          const std::vector<Real> &cov_norms)
{
    gs::CloudGrads g;
    g.resize(pos_norms.size());
    for (size_t k = 0; k < pos_norms.size(); ++k) {
        g.dPositions[k] = {pos_norms[k], 0, 0};
        g.covGradNorms[k] = cov_norms[k];
    }
    return g;
}

gs::GaussianCloud
makeCloud(size_t n)
{
    gs::GaussianCloud cloud;
    for (size_t i = 0; i < n; ++i) {
        cloud.pushIsotropic({static_cast<Real>(i) * 0.1f, 0, 2}, 0.05f,
                            0.5f, {0.5f, 0.5f, 0.5f});
    }
    return cloud;
}

gs::TileBins
makeBins(u64 intersections)
{
    gs::TileBins bins;
    bins.tiles = 1;
    bins.offsets = {0, static_cast<u32>(intersections)};
    for (u64 i = 0; i < intersections; ++i)
        bins.indices.push_back(static_cast<u32>(i));
    return bins;
}

} // namespace

TEST(Importance, Eq7Weighting)
{
    auto grads = makeGrads({1.0f, 0.0f}, {0.0f, 1.0f});
    auto s = importanceScores(grads, Real(0.8));
    EXPECT_NEAR(s[0], 1.0, 1e-6);   // pure position gradient
    EXPECT_NEAR(s[1], 0.8, 1e-6);   // pure covariance gradient * lambda
}

TEST(Importance, AccumulateExtends)
{
    std::vector<Real> acc;
    accumulateScores(acc, {1, 2});
    accumulateScores(acc, {1, 2, 3});
    ASSERT_EQ(acc.size(), 3u);
    EXPECT_EQ(acc[0], 2);
    EXPECT_EQ(acc[2], 3);
}

TEST(Importance, TopFractionMassDetectsSkew)
{
    // 90% of mass in 10% of entries (Fig. 4-style skew).
    std::vector<Real> skewed(100, Real(0.1));
    for (int i = 0; i < 10; ++i)
        skewed[i] = 9.0f;
    double mass = topFractionMass(skewed, 0.10);
    EXPECT_GT(mass, 0.85);

    std::vector<Real> flat(100, Real(1));
    EXPECT_NEAR(topFractionMass(flat, 0.10), 0.10, 1e-9);
}

TEST(Pruner, MasksLowImportanceAfterInterval)
{
    PrunerConfig cfg;
    cfg.initialInterval = 3;
    cfg.maskFractionPerInterval = Real(0.25);
    cfg.minGaussians = 1;
    AdaptiveGaussianPruner pruner(cfg);

    auto cloud = makeCloud(20);
    pruner.beginFrame(cloud);
    // Gaussians 0..9 important; 10..19 negligible.
    std::vector<Real> pos(20, Real(0.001)), cov(20, Real(0.001));
    for (int i = 0; i < 10; ++i)
        pos[static_cast<size_t>(i)] = 1.0f;
    auto grads = makeGrads(pos, cov);
    auto bins = makeBins(100);

    for (int it = 0; it < 3; ++it)
        pruner.onIteration(cloud, grads, bins, nullptr);

    // 25% of 20 = 5 masked, all from the unimportant half.
    EXPECT_EQ(pruner.stats().masked, 5u);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(cloud.active[static_cast<size_t>(i)]);
    size_t masked = 0;
    for (int i = 10; i < 20; ++i)
        masked += cloud.active[static_cast<size_t>(i)] ? 0 : 1;
    EXPECT_EQ(masked, 5u);
    // Masked but NOT removed yet (mask-prune, not direct prune).
    EXPECT_EQ(cloud.size(), 20u);
}

TEST(Pruner, RemovesMaskedAtNextBoundary)
{
    PrunerConfig cfg;
    cfg.initialInterval = 2;
    cfg.maskFractionPerInterval = Real(0.2);
    cfg.minGaussians = 1;
    AdaptiveGaussianPruner pruner(cfg);

    auto cloud = makeCloud(10);
    pruner.beginFrame(cloud);
    std::vector<Real> pos(10, Real(0.001)), cov(10, Real(0.001));
    pos[0] = pos[1] = 1.0f;
    auto grads = makeGrads(pos, cov);
    auto bins = makeBins(50);

    bool compact_called = false;
    AdaptiveGaussianPruner::CompactFn compact =
        [&](const std::vector<u8> &keep) {
            compact_called = true;
            EXPECT_EQ(keep.size(), 10u);
        };

    // First interval: masks 2.
    pruner.onIteration(cloud, grads, bins, compact);
    pruner.onIteration(cloud, grads, bins, compact);
    EXPECT_EQ(pruner.stats().masked, 2u);
    EXPECT_FALSE(compact_called);

    // Second interval boundary: masked set permanently removed.
    // Interval adapted: stable intersections -> interval = 2*K0 = 4.
    for (int it = 0; it < 4; ++it) {
        auto g = makeGrads(std::vector<Real>(cloud.size(), Real(0.01)),
                           std::vector<Real>(cloud.size(), Real(0.01)));
        pruner.onIteration(cloud, g, bins, compact);
    }
    EXPECT_TRUE(compact_called);
    EXPECT_EQ(pruner.stats().prunedTotal, 2u);
    EXPECT_EQ(cloud.size(), 8u);
}

TEST(Pruner, IntervalAdaptsToIntersectionChange)
{
    PrunerConfig cfg;
    cfg.initialInterval = 4;
    cfg.maskFractionPerInterval = Real(0.0); // isolate interval logic
    AdaptiveGaussianPruner pruner(cfg);

    auto cloud = makeCloud(10);
    pruner.beginFrame(cloud);
    auto grads = makeGrads(std::vector<Real>(10, Real(0.1)),
                           std::vector<Real>(10, Real(0.1)));

    // Interval 1 establishes the baseline intersection count.
    for (int it = 0; it < 4; ++it)
        pruner.onIteration(cloud, grads, makeBins(100), nullptr);
    EXPECT_EQ(pruner.stats().currentInterval, 4u);

    // Interval 2 sees a >5% change: next interval K0/2 = 2.
    for (int it = 0; it < 4; ++it)
        pruner.onIteration(cloud, grads, makeBins(120), nullptr);
    EXPECT_EQ(pruner.stats().currentInterval, 2u);

    // Interval 3 (length 2) sees a <5% change: next interval 2*K0 = 8.
    for (int it = 0; it < 2; ++it)
        pruner.onIteration(cloud, grads, makeBins(121), nullptr);
    EXPECT_EQ(pruner.stats().currentInterval, 8u);
}

TEST(Pruner, RespectsGlobalCap)
{
    PrunerConfig cfg;
    cfg.initialInterval = 1;
    cfg.maskFractionPerInterval = Real(0.5);
    cfg.maxPruneRatio = Real(0.3);
    cfg.minGaussians = 1;
    AdaptiveGaussianPruner pruner(cfg);

    auto cloud = makeCloud(100);
    pruner.beginFrame(cloud);
    auto grads = makeGrads(std::vector<Real>(100, Real(0.1)),
                           std::vector<Real>(100, Real(0.1)));
    auto bins = makeBins(100);
    for (int it = 0; it < 20; ++it) {
        grads.resize(cloud.size());
        pruner.onIteration(cloud, grads, bins, nullptr);
    }
    // Never prunes beyond 30% of the initial population.
    EXPECT_LE(pruner.stats().prunedTotal + pruner.stats().masked, 30u);
    EXPECT_LE(pruner.prunedRatio(), 0.3 + 1e-9);
}

TEST(Pruner, DirectPruneSkipsGracePeriod)
{
    PrunerConfig cfg;
    cfg.initialInterval = 1;
    cfg.maskFractionPerInterval = Real(0.2);
    cfg.minGaussians = 1;
    cfg.directPrune = true;
    AdaptiveGaussianPruner pruner(cfg);

    auto cloud = makeCloud(10);
    pruner.beginFrame(cloud);
    auto grads = makeGrads(std::vector<Real>(10, Real(0.1)),
                           std::vector<Real>(10, Real(0.1)));
    pruner.onIteration(cloud, grads, makeBins(10), nullptr);
    // Removed immediately, not just masked.
    EXPECT_EQ(cloud.size(), 8u);
    EXPECT_EQ(pruner.stats().masked, 0u);
}

TEST(Pruner, NeverDropsBelowMinimum)
{
    PrunerConfig cfg;
    cfg.initialInterval = 1;
    cfg.maskFractionPerInterval = Real(0.9);
    cfg.maxPruneRatio = Real(0.9);
    cfg.minGaussians = 8;
    AdaptiveGaussianPruner pruner(cfg);

    auto cloud = makeCloud(10);
    pruner.beginFrame(cloud);
    for (int it = 0; it < 10; ++it) {
        auto grads = makeGrads(std::vector<Real>(cloud.size(), Real(0.1)),
                               std::vector<Real>(cloud.size(), Real(0.1)));
        pruner.onIteration(cloud, grads, makeBins(10), nullptr);
    }
    EXPECT_GE(cloud.activeCount(), 8u);
}

TEST(Downsampler, ScheduleMatchesPaperFormula)
{
    DownsamplerConfig cfg;
    cfg.minWidthPixels = 0; // isolate the formula from the pixel floor
    DynamicDownsampler d(cfg);
    // Area scale sequence after a keyframe: 1/16, 2/16, 4/16 (cap 1/4),
    // then stays at the 1/4 cap.
    EXPECT_NEAR(d.areaScaleFor(1), 1.0 / 16, 1e-6);
    EXPECT_NEAR(d.areaScaleFor(2), 2.0 / 16, 1e-6);
    EXPECT_NEAR(d.areaScaleFor(3), 4.0 / 16, 1e-6);
    EXPECT_NEAR(d.areaScaleFor(4), 4.0 / 16, 1e-6);
    EXPECT_NEAR(d.areaScaleFor(9), 4.0 / 16, 1e-6);
}

TEST(Downsampler, KeyframesResetToFull)
{
    DownsamplerConfig cfg;
    cfg.minWidthPixels = 0;
    DynamicDownsampler d(cfg);
    EXPECT_EQ(d.nextScale(true, 640), 1.0f);
    Real s1 = d.nextScale(false, 640);
    EXPECT_NEAR(s1, 0.25f, 1e-5); // sqrt(1/16)
    Real s2 = d.nextScale(false, 640);
    EXPECT_NEAR(s2, std::sqrt(2.0f / 16), 1e-5);
    EXPECT_EQ(d.nextScale(true, 640), 1.0f); // reset
    EXPECT_NEAR(d.nextScale(false, 640), 0.25f, 1e-5);
}

TEST(Downsampler, PixelFloorClampsScale)
{
    DownsamplerConfig cfg;
    cfg.minWidthPixels = 80;
    DynamicDownsampler d(cfg);
    d.nextScale(true, 160);
    // sqrt(1/16)=0.25 would give 40 px < 80 px floor -> clamp to 0.5.
    Real s = d.nextScale(false, 160);
    EXPECT_NEAR(s, 0.5f, 1e-5);
}

TEST(Downsampler, FirstFrameIsFullResolution)
{
    DynamicDownsampler d;
    // Before any keyframe is seen, scale must be 1.
    EXPECT_EQ(d.nextScale(false, 640), 1.0f);
}

TEST(Baselines, KeepMaskDropsLowest)
{
    std::vector<Real> scores{5, 1, 4, 0.5f, 3, 2};
    auto keep = keepMaskFromScores(scores, Real(1.0f / 3), 1);
    // Two pruned: indices 1 and 3 (lowest scores).
    EXPECT_EQ(keep[3], 0);
    EXPECT_EQ(keep[1], 0);
    EXPECT_EQ(keep[0], 1);
    EXPECT_EQ(keep[2], 1);
}

TEST(Baselines, KeepMaskRespectsMinimum)
{
    std::vector<Real> scores(10, Real(1));
    auto keep = keepMaskFromScores(scores, Real(0.9), 8);
    size_t kept = 0;
    for (u8 k : keep)
        kept += k;
    EXPECT_EQ(kept, 8u);
}

TEST(Baselines, TamingWarmupSemantics)
{
    TamingScorer scorer(5);
    auto grads = makeGrads({1, 2}, {0, 0});
    EXPECT_FALSE(scorer.warmedUp());
    for (int i = 0; i < 5; ++i)
        scorer.observe(grads);
    EXPECT_TRUE(scorer.warmedUp());
    EXPECT_EQ(scorer.observedIterations(), 5u);
    auto s = scorer.scores();
    EXPECT_GT(s[1], s[0]); // larger gradients -> larger trend score
}

TEST(Baselines, TamingRemapKeepsAlignment)
{
    TamingScorer scorer(5);
    auto grads = makeGrads({1, 5, 2}, {0, 0, 0});
    scorer.observe(grads);
    scorer.remap({1, 0, 1});
    auto s = scorer.scores();
    ASSERT_EQ(s.size(), 2u);
    EXPECT_LT(s[0], s[1]); // entry for old index 2 > old index 0
}

TEST(Baselines, LightGaussianChargesExtraPasses)
{
    auto cloud = makeCloud(4);
    gs::ProjectedCloud view;
    view.items.resize(4);
    for (auto &p : view.items) {
        p.valid = true;
        p.radius = 3;
        p.opacity = 0.5f;
    }
    std::vector<const gs::ProjectedCloud *> views{&view, &view};
    auto result = lightGaussianScores(cloud, views);
    EXPECT_EQ(result.extraRenderPasses, 2u);
    for (Real s : result.scores)
        EXPECT_GT(s, 0);
}

TEST(Baselines, FlashGsScoresSaliency)
{
    auto cloud = makeCloud(3);
    // Make Gaussian 2's colour deviate strongly from the scene mean.
    cloud.shCoeffs.mut()[2] =
        gs::GaussianCloud::rgbToSh({0.95f, 0.05f, 0.05f});
    gs::ProjectedCloud view;
    view.items.resize(3);
    for (auto &p : view.items) {
        p.valid = true;
        p.radius = 2;
        p.opacity = 0.5f;
    }
    std::vector<const gs::ProjectedCloud *> views{&view};
    auto result = flashGsScores(cloud, views);
    EXPECT_GT(result.extraRenderPasses, 1u);
    EXPECT_GT(result.scores[2], result.scores[0]);
}

TEST(RtgsApi, NonKeyframeProtocolOrder)
{
    std::vector<std::string> calls;
    RtgsRuntime runtime(
        [&](int, bool) { calls.push_back("execute"); },
        [&](int) { calls.push_back("prune"); },
        [&](int) { calls.push_back("pose"); },
        [&](int) { calls.push_back("map"); });

    auto &trace = runtime.rtgsExecute(7, /*is_keyframe=*/false);
    ASSERT_EQ(calls.size(), 3u);
    EXPECT_EQ(calls[0], "execute");
    EXPECT_EQ(calls[1], "prune");
    EXPECT_EQ(calls[2], "pose");

    // Flag ordering per Listing 1.
    std::vector<RtgsEvent> expected{
        RtgsEvent::InputDone, RtgsEvent::ExecuteStart,
        RtgsEvent::GradientReady, RtgsEvent::PruningStart,
        RtgsEvent::PruningDone, RtgsEvent::PoseWritten,
        RtgsEvent::FrameComplete};
    ASSERT_EQ(trace.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(trace[i], expected[i]) << "event " << i;
    EXPECT_EQ(runtime.rtgsCheckStatus(7), RtgsStatus::Idle);
}

TEST(RtgsApi, KeyframeSkipsPruningAndPose)
{
    std::vector<std::string> calls;
    RtgsRuntime runtime(
        [&](int, bool) { calls.push_back("execute"); },
        [&](int) { calls.push_back("prune"); },
        [&](int) { calls.push_back("pose"); },
        [&](int) { calls.push_back("map"); });

    auto &trace = runtime.rtgsExecute(3, /*is_keyframe=*/true);
    ASSERT_EQ(calls.size(), 2u);
    EXPECT_EQ(calls[0], "execute");
    EXPECT_EQ(calls[1], "map");
    bool saw_pruning = false;
    for (auto e : trace)
        saw_pruning |= e == RtgsEvent::PruningStart;
    EXPECT_FALSE(saw_pruning);
    EXPECT_EQ(runtime.framesExecuted(), 1u);
}

TEST(RtgsApi, StatusDuringExecution)
{
    RtgsRuntime *self = nullptr;
    RtgsRuntime runtime(
        [&](int id, bool) {
            EXPECT_EQ(self->rtgsCheckStatus(id), RtgsStatus::Executing);
        },
        [&](int id) {
            EXPECT_EQ(self->rtgsCheckStatus(id),
                      RtgsStatus::WaitPruning);
        },
        nullptr, nullptr);
    self = &runtime;
    runtime.rtgsExecute(1, false);
    EXPECT_EQ(runtime.rtgsCheckStatus(1, /*blocking=*/true),
              RtgsStatus::Idle);
}

TEST(RtgsApi, EventNamesAreStable)
{
    EXPECT_STREQ(rtgsEventName(RtgsEvent::InputDone), "input_done");
    EXPECT_STREQ(rtgsEventName(RtgsEvent::GradientReady),
                 "gradient_ready");
}

} // namespace rtgs::core
