/**
 * @file
 * Tests for the deterministic fault injector: reproducibility,
 * independence of the fault classes, and the per-class perturbation
 * semantics (drops, timestamp faults, corruption, exposure shifts,
 * depth dropout) that the robustness benches build their stress
 * scenarios from.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "data/fault_injector.hh"

namespace rtgs::data
{

namespace
{

Frame
makeFrame(u32 index, u32 w = 24, u32 h = 18)
{
    Frame f;
    f.index = index;
    f.timestamp = static_cast<double>(index) / 30.0;
    f.rgb = ImageRGB(w, h);
    f.depth = ImageF(w, h);
    for (u32 y = 0; y < h; ++y) {
        for (u32 x = 0; x < w; ++x) {
            Real v = Real(0.2) +
                     Real(0.6) * static_cast<Real>((x + y + index) % 7) /
                         Real(7);
            f.rgb.at(x, y) = {v, v, v};
            f.depth.at(x, y) = Real(1.5) + Real(0.01) * static_cast<Real>(x);
        }
    }
    return f;
}

size_t
runAndCountDropped(const FaultSchedule &schedule, u32 frames)
{
    FaultInjector injector(schedule);
    for (u32 i = 0; i < frames; ++i)
        injector.process(makeFrame(i));
    return injector.stats().dropped;
}

} // namespace

TEST(FaultInjector, DefaultScheduleIsPassthrough)
{
    FaultSchedule schedule;
    EXPECT_FALSE(schedule.anyEnabled());
    FaultInjector injector(schedule);
    for (u32 i = 0; i < 8; ++i) {
        Frame src = makeFrame(i);
        auto out = injector.process(src);
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->timestamp, src.timestamp);
        for (size_t p = 0; p < src.rgb.pixelCount(); ++p) {
            EXPECT_EQ(out->rgb[p].x, src.rgb[p].x);
            EXPECT_EQ(out->depth[p], src.depth[p]);
        }
        const FaultRecord &rec = injector.lastRecord();
        EXPECT_FALSE(rec.dropped || rec.corrupted || rec.exposureShifted ||
                     rec.depthDropout || rec.duplicatedTimestamp ||
                     rec.outOfOrderTimestamp);
    }
}

TEST(FaultInjector, DeterministicForSeed)
{
    FaultSchedule schedule;
    schedule.seed = 7;
    schedule.dropProbability = Real(0.2);
    schedule.corruptionProbability = Real(0.3);
    schedule.exposureShiftProbability = Real(0.3);
    schedule.depthDropoutProbability = Real(0.15);

    FaultInjector a(schedule), b(schedule);
    for (u32 i = 0; i < 30; ++i) {
        auto oa = a.process(makeFrame(i));
        auto ob = b.process(makeFrame(i));
        ASSERT_EQ(oa.has_value(), ob.has_value()) << "frame " << i;
        if (!oa)
            continue;
        for (size_t p = 0; p < oa->rgb.pixelCount(); ++p) {
            // Bitwise equality, NaN-safe: the same schedule must
            // perturb identically, including the NaN punches.
            EXPECT_EQ(std::memcmp(&oa->rgb[p], &ob->rgb[p],
                                  sizeof(Vec3f)), 0);
        }
        EXPECT_EQ(oa->timestamp, ob->timestamp);
    }
    EXPECT_EQ(a.stats().dropped, b.stats().dropped);
    EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
}

TEST(FaultInjector, FaultClassesDrawIndependently)
{
    // Enabling corruption must not change WHICH frames drop: the drop
    // pattern is a function of (seed, frame index) alone.
    FaultSchedule drops_only;
    drops_only.seed = 11;
    drops_only.dropProbability = Real(0.25);

    FaultSchedule drops_and_more = drops_only;
    drops_and_more.corruptionProbability = Real(0.5);
    drops_and_more.exposureShiftProbability = Real(0.5);
    drops_and_more.depthDropoutProbability = Real(0.3);

    FaultInjector a(drops_only), b(drops_and_more);
    for (u32 i = 0; i < 40; ++i) {
        a.process(makeFrame(i));
        b.process(makeFrame(i));
        EXPECT_EQ(a.records()[i].dropped, b.records()[i].dropped)
            << "frame " << i;
    }
}

TEST(FaultInjector, DropBurstDropsExactWindow)
{
    FaultSchedule schedule;
    schedule.dropBurstStart = 5;
    schedule.dropBurstLength = 3;
    FaultInjector injector(schedule);
    for (u32 i = 0; i < 12; ++i) {
        auto out = injector.process(makeFrame(i));
        bool in_burst = i >= 5 && i < 8;
        EXPECT_EQ(out.has_value(), !in_burst) << "frame " << i;
        EXPECT_EQ(injector.records()[i].dropped, in_burst);
    }
    EXPECT_EQ(injector.stats().dropped, 3u);
    EXPECT_EQ(injector.stats().framesDelivered, 9u);
}

TEST(FaultInjector, DropProbabilityScalesWithSetting)
{
    FaultSchedule low;
    low.seed = 3;
    low.dropProbability = Real(0.1);
    FaultSchedule high = low;
    high.dropProbability = Real(0.6);
    size_t low_drops = runAndCountDropped(low, 200);
    size_t high_drops = runAndCountDropped(high, 200);
    EXPECT_GT(low_drops, 0u);
    EXPECT_GT(high_drops, low_drops);
}

TEST(FaultInjector, TimestampFaultsBreakMonotonicity)
{
    FaultSchedule schedule;
    schedule.seed = 5;
    schedule.duplicateTimestampProbability = Real(0.3);
    FaultInjector dup(schedule);
    double prev = -1;
    size_t dup_seen = 0;
    for (u32 i = 0; i < 40; ++i) {
        auto out = dup.process(makeFrame(i));
        ASSERT_TRUE(out.has_value());
        if (dup.lastRecord().duplicatedTimestamp) {
            ++dup_seen;
            EXPECT_EQ(out->timestamp, prev);
        } else if (i > 0) {
            EXPECT_GT(out->timestamp, prev);
        }
        prev = out->timestamp;
    }
    EXPECT_GT(dup_seen, 0u);

    FaultSchedule ooo_schedule;
    ooo_schedule.seed = 6;
    ooo_schedule.outOfOrderProbability = Real(0.3);
    FaultInjector ooo(ooo_schedule);
    prev = -1;
    size_t ooo_seen = 0;
    for (u32 i = 0; i < 40; ++i) {
        auto out = ooo.process(makeFrame(i));
        ASSERT_TRUE(out.has_value());
        if (ooo.lastRecord().outOfOrderTimestamp) {
            ++ooo_seen;
            EXPECT_LT(out->timestamp, prev)
                << "out-of-order delivery must regress the timestamp";
        }
        prev = out->timestamp;
    }
    EXPECT_GT(ooo_seen, 0u);
}

TEST(FaultInjector, CorruptionZeroesReportedRectangle)
{
    FaultSchedule schedule;
    schedule.seed = 9;
    schedule.corruptionProbability = Real(1);
    schedule.corruptionAreaFraction = Real(0.25);
    schedule.corruptionZeroes = true;
    FaultInjector injector(schedule);
    Frame src = makeFrame(4);
    auto out = injector.process(src);
    ASSERT_TRUE(out.has_value());
    const FaultRecord &rec = injector.lastRecord();
    ASSERT_TRUE(rec.corrupted);
    EXPECT_GT(rec.corruptW, 0u);
    EXPECT_GT(rec.corruptH, 0u);
    // Every pixel inside the reported rectangle is zeroed; everything
    // outside is untouched.
    for (u32 y = 0; y < src.rgb.height(); ++y) {
        for (u32 x = 0; x < src.rgb.width(); ++x) {
            bool inside = x >= rec.corruptX &&
                          x < rec.corruptX + rec.corruptW &&
                          y >= rec.corruptY &&
                          y < rec.corruptY + rec.corruptH;
            if (inside)
                EXPECT_EQ(out->rgb.at(x, y).x, Real(0));
            else
                EXPECT_EQ(out->rgb.at(x, y).x, src.rgb.at(x, y).x);
        }
    }
}

TEST(FaultInjector, CorruptionNanFractionPunchesNans)
{
    FaultSchedule schedule;
    schedule.seed = 10;
    schedule.corruptionProbability = Real(1);
    schedule.corruptionAreaFraction = Real(0.5);
    schedule.corruptionNanFraction = Real(0.5);
    FaultInjector injector(schedule);
    auto out = injector.process(makeFrame(2));
    ASSERT_TRUE(out.has_value());
    size_t nan_rgb = 0, nan_depth = 0;
    for (size_t p = 0; p < out->rgb.pixelCount(); ++p)
        nan_rgb += std::isnan(out->rgb[p].x) ? 1 : 0;
    for (size_t p = 0; p < out->depth.pixelCount(); ++p)
        nan_depth += std::isnan(out->depth[p]) ? 1 : 0;
    EXPECT_GT(nan_rgb, 0u);
    EXPECT_GT(nan_depth, 0u);
}

TEST(FaultInjector, ExposureShiftStaysInUnitRange)
{
    FaultSchedule schedule;
    schedule.seed = 12;
    schedule.exposureShiftProbability = Real(1);
    schedule.exposureGainMin = Real(1.4);
    schedule.exposureGainMax = Real(1.6);
    FaultInjector injector(schedule);
    Frame src = makeFrame(1);
    auto out = injector.process(src);
    ASSERT_TRUE(out.has_value());
    const FaultRecord &rec = injector.lastRecord();
    ASSERT_TRUE(rec.exposureShifted);
    EXPECT_GE(rec.exposureGain, schedule.exposureGainMin);
    EXPECT_LE(rec.exposureGain, schedule.exposureGainMax);
    double mean_src = 0, mean_out = 0;
    for (size_t p = 0; p < src.rgb.pixelCount(); ++p) {
        mean_src += src.rgb[p].x;
        mean_out += out->rgb[p].x;
        EXPECT_GE(out->rgb[p].x, Real(0));
        EXPECT_LE(out->rgb[p].x, Real(1));
    }
    EXPECT_GT(mean_out, mean_src) << "gain > 1 must brighten the frame";
    // Depth is untouched by exposure faults.
    EXPECT_EQ(out->depth[0], src.depth[0]);
}

TEST(FaultInjector, DepthDropoutZeroesWholeDepthImage)
{
    FaultSchedule schedule;
    schedule.seed = 13;
    schedule.depthDropoutProbability = Real(1);
    FaultInjector injector(schedule);
    Frame src = makeFrame(3);
    auto out = injector.process(src);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(injector.lastRecord().depthDropout);
    for (size_t p = 0; p < out->depth.pixelCount(); ++p)
        EXPECT_EQ(out->depth[p], Real(0));
    // RGB is untouched by depth dropout.
    EXPECT_EQ(out->rgb[0].x, src.rgb[0].x);
}

TEST(FaultInjector, OccluderCompositesExactWindowDeterministically)
{
    FaultSchedule schedule;
    schedule.seed = 21;
    schedule.occluderStart = 3;
    schedule.occluderLength = 4;
    schedule.occluderSizeFraction = Real(0.6);
    EXPECT_TRUE(schedule.anyEnabled());

    FaultInjector a(schedule), b(schedule);
    for (u32 i = 0; i < 10; ++i) {
        Frame src = makeFrame(i);
        auto oa = a.process(src);
        auto ob = b.process(src);
        ASSERT_TRUE(oa.has_value());
        bool in_window = i >= 3 && i < 7;
        EXPECT_EQ(a.lastRecord().occluded, in_window) << "frame " << i;
        if (in_window) {
            EXPECT_GT(a.lastRecord().occluderCoverage, Real(0));
            // Same schedule => bitwise-identical composite (position,
            // texture, and depth writes all flow from salted draws).
            for (size_t p = 0; p < oa->rgb.pixelCount(); ++p) {
                EXPECT_EQ(std::memcmp(&(*oa).rgb[p], &(*ob).rgb[p],
                                      sizeof(Vec3f)),
                          0);
                EXPECT_EQ((*oa).depth[p], (*ob).depth[p]);
            }
        } else {
            // Outside the window the frame passes through untouched.
            for (size_t p = 0; p < oa->rgb.pixelCount(); ++p)
                EXPECT_EQ((*oa).rgb[p].x, src.rgb[p].x);
        }
    }
    EXPECT_EQ(a.stats().occludedFrames, 4u);
}

TEST(FaultInjector, MotionBlurSmearsDeterministically)
{
    FaultSchedule schedule;
    schedule.seed = 22;
    schedule.motionBlurProbability = Real(1);
    schedule.motionBlurMaxPixels = Real(5);
    EXPECT_TRUE(schedule.anyEnabled());

    FaultInjector a(schedule), b(schedule);
    for (u32 i = 0; i < 6; ++i) {
        Frame src = makeFrame(i);
        auto oa = a.process(src);
        auto ob = b.process(src);
        ASSERT_TRUE(oa.has_value());
        EXPECT_TRUE(a.lastRecord().motionBlurred);
        EXPECT_GT(a.lastRecord().motionBlurPixels, Real(0));
        bool changed = false;
        for (size_t p = 0; p < oa->rgb.pixelCount(); ++p) {
            EXPECT_EQ(std::memcmp(&(*oa).rgb[p], &(*ob).rgb[p],
                                  sizeof(Vec3f)),
                      0);
            changed = changed || (*oa).rgb[p].x != src.rgb[p].x;
        }
        EXPECT_TRUE(changed) << "blur must actually smear frame " << i;
        // Depth is untouched by motion blur.
        EXPECT_EQ((*oa).depth[0], src.depth[0]);
    }
    EXPECT_EQ(a.stats().motionBlurredFrames, 6u);
}

TEST(FaultInjector, SceneDynamicsDrawIndependently)
{
    // Enabling the scene-dynamics classes must not change WHICH
    // frames the pre-existing classes perturb: each class draws from
    // its own salted stream of (seed, frame index), so toggling the
    // occluder or motion blur never shifts a drop/corruption/exposure
    // schedule that a committed bench baseline depends on.
    FaultSchedule base;
    base.seed = 11;
    base.dropProbability = Real(0.2);
    base.corruptionProbability = Real(0.3);
    base.exposureShiftProbability = Real(0.3);
    base.depthDropoutProbability = Real(0.2);
    base.outOfOrderProbability = Real(0.2);

    FaultSchedule dynamics = base;
    dynamics.occluderStart = 2;
    dynamics.occluderLength = 30;
    dynamics.motionBlurProbability = Real(0.5);

    FaultInjector a(base), b(dynamics);
    for (u32 i = 0; i < 40; ++i) {
        a.process(makeFrame(i));
        b.process(makeFrame(i));
        const FaultRecord &ra = a.records()[i];
        const FaultRecord &rb = b.records()[i];
        EXPECT_EQ(ra.dropped, rb.dropped) << "frame " << i;
        EXPECT_EQ(ra.corrupted, rb.corrupted) << "frame " << i;
        EXPECT_EQ(ra.exposureShifted, rb.exposureShifted)
            << "frame " << i;
        EXPECT_EQ(ra.depthDropout, rb.depthDropout) << "frame " << i;
        EXPECT_EQ(ra.outOfOrderTimestamp, rb.outOfOrderTimestamp)
            << "frame " << i;
    }
}

TEST(FaultInjector, StatsAggregateRecords)
{
    FaultSchedule schedule;
    schedule.dropBurstStart = 2;
    schedule.dropBurstLength = 2;
    schedule.seed = 14;
    schedule.exposureShiftProbability = Real(1);
    FaultInjector injector(schedule);
    for (u32 i = 0; i < 10; ++i)
        injector.process(makeFrame(i));
    FaultStats stats = injector.stats();
    EXPECT_EQ(stats.framesSeen, 10u);
    EXPECT_EQ(stats.dropped, 2u);
    EXPECT_EQ(stats.framesDelivered, 8u);
    EXPECT_EQ(stats.exposureShifted, 8u);
    EXPECT_EQ(injector.records().size(), 10u);
}

} // namespace rtgs::data
