/**
 * @file
 * Unit tests for the image layer: container semantics, quality metrics
 * (RMSE / PSNR / SSIM / depth MAE) and resampling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "image/image.hh"
#include "image/metrics.hh"
#include "image/resize.hh"

namespace rtgs
{

namespace
{

ImageRGB
noiseImage(u32 w, u32 h, u64 seed)
{
    Rng rng(seed);
    ImageRGB img(w, h);
    for (size_t i = 0; i < img.pixelCount(); ++i)
        img[i] = {static_cast<Real>(rng.uniform()),
                  static_cast<Real>(rng.uniform()),
                  static_cast<Real>(rng.uniform())};
    return img;
}

} // namespace

TEST(Image, IndexingRowMajor)
{
    ImageRGB img(4, 3);
    img.at(2, 1) = {1, 0, 0};
    EXPECT_EQ(img[1 * 4 + 2].x, 1);
    EXPECT_EQ(img.pixelCount(), 12u);
}

TEST(Image, FillSetsAllPixels)
{
    ImageF img(8, 8);
    img.fill(Real(2.5));
    for (size_t i = 0; i < img.pixelCount(); ++i)
        EXPECT_EQ(img[i], Real(2.5));
}

TEST(Metrics, IdenticalImagesAreInfinitePsnr)
{
    ImageRGB a = noiseImage(16, 16, 1);
    EXPECT_TRUE(std::isinf(psnr(a, a)));
    EXPECT_DOUBLE_EQ(imageRmse(a, a), 0.0);
    EXPECT_NEAR(ssim(a, a), 1.0, 1e-9);
}

TEST(Metrics, PsnrOfKnownError)
{
    // Uniform error of 0.1 -> MSE = 0.01 -> PSNR = 20 dB.
    ImageRGB a(8, 8), b(8, 8);
    a.fill({0.5f, 0.5f, 0.5f});
    b.fill({0.6f, 0.6f, 0.6f});
    EXPECT_NEAR(psnr(a, b), 20.0, 1e-4);
}

TEST(Metrics, RmseMatchesHandComputation)
{
    ImageRGB a(1, 1), b(1, 1);
    a.at(0, 0) = {0, 0, 0};
    b.at(0, 0) = {0.3f, 0, 0.4f};
    // MSE over 3 channels = (0.09 + 0 + 0.16)/3.
    EXPECT_NEAR(imageRmse(a, b), std::sqrt(0.25 / 3.0), 1e-6);
}

TEST(Metrics, SsimDropsWithNoise)
{
    ImageRGB base(32, 32);
    for (u32 y = 0; y < 32; ++y)
        for (u32 x = 0; x < 32; ++x) {
            Real v = static_cast<Real>((x / 8 + y / 8) % 2);
            base.at(x, y) = {v, v, v};
        }
    ImageRGB noisy = base;
    Rng rng(3);
    for (size_t i = 0; i < noisy.pixelCount(); ++i) {
        Real n = static_cast<Real>(rng.normal(0, 0.2));
        noisy[i].x = std::clamp(noisy[i].x + n, 0.0f, 1.0f);
        noisy[i].y = std::clamp(noisy[i].y + n, 0.0f, 1.0f);
        noisy[i].z = std::clamp(noisy[i].z + n, 0.0f, 1.0f);
    }
    double s_noisy = ssim(base, noisy);
    EXPECT_LT(s_noisy, 0.95);
    EXPECT_GT(s_noisy, 0.0);
}

TEST(Metrics, SsimSymmetric)
{
    ImageRGB a = noiseImage(24, 24, 4);
    ImageRGB b = noiseImage(24, 24, 5);
    EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-9);
}

TEST(Metrics, DepthMaeIgnoresInvalid)
{
    ImageF a(2, 1), b(2, 1);
    a.at(0, 0) = 1.0f; b.at(0, 0) = 1.5f; // valid pair, error 0.5
    a.at(1, 0) = 0.0f; b.at(1, 0) = 3.0f; // invalid (a <= 0)
    EXPECT_NEAR(depthMae(a, b), 0.5, 1e-6);
}

TEST(Resize, BoxPreservesMeanBrightness)
{
    ImageRGB img = noiseImage(64, 48, 6);
    ImageRGB small = resizeBox(img, 16, 12);
    double mean_full = 0, mean_small = 0;
    for (size_t i = 0; i < img.pixelCount(); ++i)
        mean_full += luminance(img[i]);
    for (size_t i = 0; i < small.pixelCount(); ++i)
        mean_small += luminance(small[i]);
    mean_full /= static_cast<double>(img.pixelCount());
    mean_small /= static_cast<double>(small.pixelCount());
    EXPECT_NEAR(mean_full, mean_small, 0.01);
}

TEST(Resize, BoxOfConstantIsConstant)
{
    ImageRGB img(33, 17);
    img.fill({0.25f, 0.5f, 0.75f});
    ImageRGB out = resizeBox(img, 10, 5);
    for (size_t i = 0; i < out.pixelCount(); ++i) {
        EXPECT_NEAR(out[i].x, 0.25f, 1e-5);
        EXPECT_NEAR(out[i].y, 0.5f, 1e-5);
        EXPECT_NEAR(out[i].z, 0.75f, 1e-5);
    }
}

TEST(Resize, ScalarBoxAveragesDepth)
{
    ImageF img(4, 4);
    for (u32 y = 0; y < 4; ++y)
        for (u32 x = 0; x < 4; ++x)
            img.at(x, y) = static_cast<Real>(x < 2 ? 1.0 : 3.0);
    ImageF out = resizeBox(img, 2, 2);
    EXPECT_NEAR(out.at(0, 0), 1.0, 1e-5);
    EXPECT_NEAR(out.at(1, 0), 3.0, 1e-5);
}

TEST(Resize, BilinearUpsampleInterpolates)
{
    ImageRGB img(2, 1);
    img.at(0, 0) = {0, 0, 0};
    img.at(1, 0) = {1, 1, 1};
    ImageRGB out = resizeBilinear(img, 4, 1);
    EXPECT_LE(out.at(0, 0).x, out.at(1, 0).x);
    EXPECT_LE(out.at(1, 0).x, out.at(2, 0).x);
    EXPECT_LE(out.at(2, 0).x, out.at(3, 0).x);
}

TEST(Resize, RoundTripApproximatesOriginal)
{
    // Smooth gradient survives shrink + enlarge with low error.
    ImageRGB img(32, 32);
    for (u32 y = 0; y < 32; ++y)
        for (u32 x = 0; x < 32; ++x) {
            Real v = static_cast<Real>(x + y) / 64;
            img.at(x, y) = {v, v, v};
        }
    ImageRGB down = resizeBox(img, 16, 16);
    ImageRGB up = resizeBilinear(down, 32, 32);
    EXPECT_LT(imageRmse(img, up), 0.03);
}

TEST(Gray, LuminanceWeights)
{
    ImageRGB img(1, 1);
    img.at(0, 0) = {1, 0, 0};
    ImageF g = toGray(img);
    EXPECT_NEAR(g.at(0, 0), 0.299, 1e-5);
}

} // namespace rtgs
