/**
 * @file
 * Tests for multi-view mapping iterations (SlamConfig::multiViewWindow):
 * window selection, the B <= 1 byte-identity contract with the
 * sequential per-keyframe recipe, bitwise render-worker-count
 * independence of the B > 1 accumulation, and the averaged-update
 * semantics of the multi-view optimiser step.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "common/thread_pool.hh"
#include "slam/pipeline.hh"

namespace rtgs::slam
{

namespace
{

data::DatasetSpec
tinySpec()
{
    data::DatasetSpec spec = data::DatasetSpec::tumLike(Real(0.15));
    spec.scene.surfelSpacing = Real(0.28);
    spec.trajectory.frameCount = 10;
    spec.trajectory.revolutions = Real(0.06);
    spec.noise.enabled = false;
    return spec;
}

data::SyntheticDataset &
tinyDataset()
{
    static data::SyntheticDataset ds(tinySpec());
    return ds;
}

SlamConfig
fastConfig(BaseAlgorithm algo)
{
    SlamConfig cfg = SlamConfig::forAlgorithm(algo);
    cfg.tracker.iterations = 10;
    cfg.mapper.iterations = 12;
    cfg.kfInterval = 4;
    return cfg;
}

/** Byte-compare two SE3 sequences. */
bool
trajectoriesIdentical(const std::vector<SE3> &a, const std::vector<SE3> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].rot, &b[i].rot, sizeof(a[i].rot)) != 0 ||
            std::memcmp(&a[i].trans, &b[i].trans, sizeof(a[i].trans)) !=
                0) {
            return false;
        }
    }
    return true;
}

/** Byte-compare the parameter arrays of two clouds. */
bool
cloudsIdentical(const gs::GaussianCloud &a, const gs::GaussianCloud &b)
{
    auto eq = [](const auto &u, const auto &v) {
        using T = typename std::decay_t<decltype(u)>::value_type;
        return u.size() == v.size() &&
               (u.empty() ||
                std::memcmp(u.data(), v.data(), u.size() * sizeof(T)) ==
                    0);
    };
    return eq(a.positions, b.positions) && eq(a.logScales, b.logScales) &&
           eq(a.rotations, b.rotations) &&
           eq(a.opacityLogits, b.opacityLogits) &&
           eq(a.shCoeffs, b.shCoeffs) && eq(a.active, b.active);
}

/** What a finished run leaves behind (SlamSystem itself is pinned by
 *  its mutexes, so copy the outputs out). */
struct RunResult
{
    std::vector<SE3> trajectory;
    gs::GaussianCloud cloud;
    std::vector<FrameReport> reports;
};

/** Run a sync-mode sequence with the given multi-view window. */
RunResult
runSequence(BaseAlgorithm algo, u32 multi_view_window,
            ThreadPool *pool = nullptr)
{
    auto &ds = tinyDataset();
    SlamConfig cfg = fastConfig(algo);
    cfg.multiViewWindow = multi_view_window;
    SlamSystem system(cfg, ds.intrinsics());
    if (pool)
        system.setRenderPool(pool);
    for (u32 f = 0; f < ds.frameCount(); ++f)
        system.processFrame(ds.frame(f));
    return {system.trajectory(), system.cloud(), system.reports()};
}

} // namespace

TEST(MultiView, SelectionMatchesSequentialAlternationForBZeroAndOne)
{
    // B = 0 and B = 1 must reproduce the sequential recipe's keyframe
    // choice exactly: the newest keyframe on even steps (or always,
    // for a one-entry window), a rotating pick of the rest on odd
    // ones. This is the selection half of the byte-identity contract.
    for (u32 b : {0u, 1u}) {
        for (size_t window : {size_t(1), size_t(2), size_t(3),
                              size_t(5)}) {
            for (u32 it = 0; it < 12; ++it) {
                auto views =
                    Mapper::multiViewSelection(window, it, b);
                ASSERT_EQ(views.size(), 1u);
                size_t expected =
                    (it % 2 == 0 || window == 1)
                        ? window - 1
                        : (it / 2) % (window - 1);
                EXPECT_EQ(views[0], expected)
                    << "b=" << b << " window=" << window
                    << " it=" << it;
            }
        }
    }
    EXPECT_TRUE(Mapper::multiViewSelection(0, 3, 2).empty());
}

TEST(MultiView, SelectionRendersDistinctViewsNewestLast)
{
    // B >= 2: each step renders min(B, window) distinct window
    // entries, the newest keyframe always included and always last
    // (its loss is the step's reported loss), and the rotation visits
    // every older entry across steps.
    for (size_t window : {size_t(2), size_t(3), size_t(5)}) {
        for (u32 b : {2u, 3u, 4u, 8u}) {
            std::set<size_t> rest_seen;
            for (u32 it = 0; it < 16; ++it) {
                auto views = Mapper::multiViewSelection(window, it, b);
                ASSERT_EQ(views.size(),
                          std::min<size_t>(b, window))
                    << "window=" << window << " b=" << b;
                EXPECT_EQ(views.back(), window - 1);
                std::set<size_t> unique(views.begin(), views.end());
                EXPECT_EQ(unique.size(), views.size())
                    << "duplicate view selected";
                for (size_t v : views) {
                    ASSERT_LT(v, window);
                    if (v + 1 != window)
                        rest_seen.insert(v);
                }
            }
            // The rotation must eventually revisit every older entry.
            EXPECT_EQ(rest_seen.size(), window - 1)
                << "window=" << window << " b=" << b;
        }
    }
}

TEST(MultiView, WindowOneByteIdenticalToSequentialOnAllProfiles)
{
    // multiViewWindow = 0 runs the sequential per-keyframe recipe
    // unchanged (verified bit-for-bit against the pre-multi-view
    // build when this landed), and multiViewWindow = 1 must select
    // the same single keyframe per step and apply the same update —
    // so B=0 and B=1 runs must match byte for byte on every profile.
    const BaseAlgorithm algos[] = {BaseAlgorithm::GsSlam,
                                   BaseAlgorithm::MonoGs,
                                   BaseAlgorithm::PhotoSlam,
                                   BaseAlgorithm::SplaTam};
    for (auto algo : algos) {
        RunResult sequential = runSequence(algo, 0);
        RunResult single_view = runSequence(algo, 1);
        EXPECT_TRUE(trajectoriesIdentical(sequential.trajectory,
                                          single_view.trajectory))
            << algorithmName(algo) << ": trajectories diverged";
        EXPECT_TRUE(cloudsIdentical(sequential.cloud,
                                    single_view.cloud))
            << algorithmName(algo) << ": maps diverged";
    }
}

TEST(MultiView, MultiViewBitwiseIndependentOfRenderWorkers)
{
    // The B > 1 accumulation folds views in a fixed order over fixed
    // per-Gaussian chunks, and the overlapped forward is bitwise equal
    // to the inline one — so the same run at 1/2/4 render workers must
    // produce identical trajectories and maps.
    std::vector<std::vector<SE3>> trajectories;
    std::vector<gs::GaussianCloud> clouds;
    for (size_t workers : {1u, 2u, 4u}) {
        ThreadPool pool(workers);
        RunResult run = runSequence(BaseAlgorithm::MonoGs, 2, &pool);
        trajectories.push_back(run.trajectory);
        clouds.push_back(run.cloud);
    }
    for (size_t i = 1; i < trajectories.size(); ++i) {
        EXPECT_TRUE(
            trajectoriesIdentical(trajectories[0], trajectories[i]));
        EXPECT_TRUE(cloudsIdentical(clouds[0], clouds[i]));
    }
}

TEST(MultiView, AsyncMultiViewBitwiseIndependentOfRenderWorkers)
{
    // Same contract with mapping on the pool: the drain task is itself
    // a pool worker, so this exercises the on-worker overlap gating
    // (a 1-worker pool must fall back to inline forwards rather than
    // deadlock). Drained per frame for identical snapshot visibility.
    auto &ds = tinyDataset();
    std::vector<std::vector<SE3>> trajectories;
    std::vector<gs::GaussianCloud> clouds;
    for (size_t workers : {1u, 2u, 4u}) {
        ThreadPool pool(workers);
        SlamConfig cfg = fastConfig(BaseAlgorithm::SplaTam);
        cfg.mapQueueDepth = 2;
        cfg.multiViewWindow = 2;
        SlamSystem system(cfg, ds.intrinsics());
        system.setRenderPool(&pool);
        for (u32 f = 0; f < ds.frameCount(); ++f) {
            system.processFrame(ds.frame(f));
            system.waitForMapping();
        }
        trajectories.push_back(system.trajectory());
        clouds.push_back(system.cloud());
    }
    for (size_t i = 1; i < trajectories.size(); ++i) {
        EXPECT_TRUE(
            trajectoriesIdentical(trajectories[0], trajectories[i]));
        EXPECT_TRUE(cloudsIdentical(clouds[0], clouds[i]));
    }
}

TEST(MultiView, DuplicateViewAverageEqualsSingleViewStep)
{
    // Averaged-update semantics, isolated at the mapper: a two-view
    // step over two IDENTICAL keyframes sums two bitwise-equal
    // gradients (g + g = 2g, exact in floating point) and divides by
    // two — so the applied update must equal the single-view step's,
    // byte for byte.
    auto &ds = tinyDataset();
    KeyframeRecord kf{0, ds.frame(0).gtPose, ds.frame(0).rgb,
                      ds.frame(0).depth};

    auto run = [&](u32 b) {
        MapperConfig cfg;
        cfg.iterations = 3;
        cfg.windowSize = 2;
        cfg.multiViewWindow = b;
        Mapper mapper(cfg);
        gs::RenderPipeline pipeline;
        gs::GaussianCloud cloud;
        std::vector<MapBatchItem> items(2);
        items[0].record = kf;
        items[1].record = kf;
        mapper.mapBatch(pipeline, cloud, ds.intrinsics(), items);
        return cloud;
    };

    gs::GaussianCloud sequential = run(0);
    gs::GaussianCloud averaged = run(2);
    // With B=0 the window alternation also only ever renders copies of
    // the same keyframe, so the two recipes apply identical updates.
    EXPECT_GT(sequential.size(), 0u);
    EXPECT_TRUE(cloudsIdentical(sequential, averaged));
}

TEST(MultiView, MultiViewChangesNumericsAndReportsViewCount)
{
    // B >= 2 is a genuinely different optimisation schedule (that is
    // why the bench carries a quality ablation): once the window has
    // more than one keyframe the maps must diverge from the
    // sequential run, and keyframe reports must record the per-step
    // view count on both paths.
    RunResult sequential = runSequence(BaseAlgorithm::MonoGs, 0);
    RunResult multi = runSequence(BaseAlgorithm::MonoGs, 3);

    EXPECT_FALSE(cloudsIdentical(sequential.cloud, multi.cloud));

    u32 max_views_seq = 0, max_views_multi = 0;
    for (const auto &r : sequential.reports)
        if (r.isKeyframe)
            max_views_seq = std::max(max_views_seq, r.mapMultiViews);
    for (const auto &r : multi.reports)
        if (r.isKeyframe)
            max_views_multi = std::max(max_views_multi, r.mapMultiViews);
    EXPECT_EQ(max_views_seq, 1u);
    EXPECT_GE(max_views_multi, 2u);
    EXPECT_LE(max_views_multi, 3u);
}

} // namespace rtgs::slam
