/**
 * @file
 * Unit tests for the common infrastructure: RNG determinism and
 * statistical sanity, running stats, histograms, the stats registry,
 * the table printer, and the thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.hh"
#include "common/mutex.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"

namespace rtgs
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double acc = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(3);
    std::set<u64> seen;
    for (int i = 0; i < 1000; ++i) {
        u64 v = rng.uniformInt(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all residues hit
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(13);
    RunningStat s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(s.mean(), 2.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, ChanceProbability)
{
    Rng rng(17);
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat all, a, b;
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        double v = rng.normal();
        all.add(v);
        (i < 40 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 9
    h.add(-3.0);  // clamps to bin 0
    h.add(40.0);  // clamps to bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, PercentileMonotonic)
{
    Histogram h(0.0, 100.0, 100);
    Rng rng(23);
    for (int i = 0; i < 10000; ++i)
        h.add(rng.uniform(0, 100));
    double p25 = h.percentileApprox(0.25);
    double p50 = h.percentileApprox(0.50);
    double p90 = h.percentileApprox(0.90);
    EXPECT_LE(p25, p50);
    EXPECT_LE(p50, p90);
    EXPECT_NEAR(p50, 50.0, 3.0);
}

TEST(StatsRegistry, IncSetGet)
{
    StatsRegistry reg;
    reg.inc("frames");
    reg.inc("frames", 2.0);
    reg.set("fps", 31.5);
    EXPECT_DOUBLE_EQ(reg.get("frames"), 3.0);
    EXPECT_DOUBLE_EQ(reg.get("fps"), 31.5);
    EXPECT_DOUBLE_EQ(reg.get("missing"), 0.0);
    EXPECT_TRUE(reg.has("fps"));
    EXPECT_FALSE(reg.has("missing"));
    reg.clear();
    EXPECT_FALSE(reg.has("fps"));
}

TEST(StatsRegistry, DumpSortedByName)
{
    StatsRegistry reg;
    reg.set("b", 2);
    reg.set("a", 1);
    std::string d = reg.dump();
    EXPECT_LT(d.find("a 1"), d.find("b 2"));
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "2"});
    std::string s = t.str();
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    EXPECT_NE(s.find("value"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TablePrinter, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, hits.size(), [&](size_t i) { hits[i]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, [&](size_t) { calls++; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, NestedUseFromResults)
{
    // Sum of squares computed in parallel equals the closed form.
    ThreadPool pool(3);
    std::vector<long> sq(2001);
    pool.parallelFor(0, sq.size(), [&](size_t i) {
        sq[i] = static_cast<long>(i) * static_cast<long>(i);
    });
    long total = 0;
    for (long v : sq)
        total += v;
    long n = 2000;
    EXPECT_EQ(total, n * (n + 1) * (2 * n + 1) / 6);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // A worker calling parallelFor used to block on chunks that only
    // workers could drain (it *is* the drain); nested calls must run
    // inline and still cover the full range exactly once.
    ThreadPool pool(2);
    std::vector<std::atomic<int>> hits(64 * 16);
    pool.parallelFor(0, 64, [&](size_t i) {
        pool.parallelFor(0, 16,
                         [&](size_t j) { hits[i * 16 + j]++; });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksCoversRangeOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(777);
    pool.parallelForChunks(0, hits.size(), [&](size_t lo, size_t hi) {
        EXPECT_LT(lo, hi);
        for (size_t i = lo; i < hi; ++i)
            hits[i]++;
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OnWorkerThreadDetection)
{
    // Membership is per pool: the main thread is never a worker, and a
    // worker of one pool must not claim membership of another.
    ThreadPool pool(2), other(1);
    EXPECT_FALSE(pool.onWorkerThread());
    std::atomic<int> cross_claims{0};
    pool.parallelFor(0, 64, [&](size_t) {
        if (other.onWorkerThread())
            cross_claims++;
    });
    EXPECT_EQ(cross_claims.load(), 0);
    EXPECT_FALSE(pool.onWorkerThread());
}

TEST(ThreadPool, SubmitRunsTaskAndFulfillsFuture)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    auto f1 = pool.submit([&] { ran++; });
    auto f2 = pool.submit([&] { ran++; });
    f1.wait();
    f2.wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(1);
    auto f = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(BoundedQueue, FifoOrder)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.push(i));
    for (int i = 0; i < 5; ++i) {
        int v = -1;
        EXPECT_TRUE(q.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPopOnEmptyFails)
{
    BoundedQueue<int> q(2);
    int v = 0;
    EXPECT_FALSE(q.tryPop(v));
}

TEST(BoundedQueue, PushBlocksAtCapacityUntilPop)
{
    BoundedQueue<int> q(1);
    EXPECT_TRUE(q.push(1));
    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        q.push(2); // blocks until the consumer pops
        second_pushed = true;
    });
    // The producer must be parked on the full queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(second_pushed.load());
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    producer.join();
    EXPECT_TRUE(second_pushed.load());
    EXPECT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 2);
}

TEST(BoundedQueue, TryPushFailsOnFullAndLeavesValueIntact)
{
    BoundedQueue<std::string> q(1);
    std::string a = "first";
    EXPECT_TRUE(q.tryPush(a));
    std::string b = "second";
    EXPECT_FALSE(q.tryPush(b));
    EXPECT_EQ(b, "second") << "failed tryPush must not move from value";
    std::string v;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, "first");
    EXPECT_TRUE(q.tryPush(b));
}

TEST(BoundedQueue, TryPushForTimesOutOnWedgedConsumer)
{
    BoundedQueue<std::string> q(1);
    std::string a = "first";
    EXPECT_TRUE(q.tryPush(a));
    std::string b = "second";
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.tryPushFor(b, std::chrono::milliseconds(30)));
    auto waited = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(waited, std::chrono::milliseconds(25));
    EXPECT_EQ(b, "second") << "timeout must not move from value";

    // With a consumer draining, the bounded wait succeeds instead.
    std::thread consumer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        std::string v;
        q.pop(v);
    });
    EXPECT_TRUE(q.tryPushFor(b, std::chrono::seconds(5)));
    consumer.join();
}

TEST(BoundedQueue, PushEvictingOldestDropsFrontAtCapacity)
{
    BoundedQueue<int> q(2);
    std::optional<int> evicted;
    EXPECT_TRUE(q.pushEvictingOldest(1, evicted));
    EXPECT_FALSE(evicted.has_value());
    EXPECT_TRUE(q.pushEvictingOldest(2, evicted));
    EXPECT_FALSE(evicted.has_value()) << "no eviction below capacity";
    EXPECT_TRUE(q.pushEvictingOldest(3, evicted));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1) << "the OLDEST item is evicted";
    // Survivors keep FIFO order.
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 3);
}

TEST(BoundedQueue, EvictingPushFailsOnlyWhenClosed)
{
    BoundedQueue<int> q(1);
    q.close();
    std::optional<int> evicted;
    EXPECT_FALSE(q.pushEvictingOldest(1, evicted));
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(q.size(), 0u);
    int v = 0;
    EXPECT_FALSE(q.tryPush(v)) << "tryPush also refuses a closed queue";
}

TEST(BoundedQueue, CloseWakesProducerAndDrainsConsumer)
{
    BoundedQueue<int> q(1);
    EXPECT_TRUE(q.push(7));
    std::thread producer([&] {
        int v = 99;
        // Full queue: this push parks, then fails once closed.
        EXPECT_FALSE(q.push(v));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
    producer.join();
    int v = 0;
    EXPECT_TRUE(q.pop(v)); // closed queues still drain
    EXPECT_EQ(v, 7);
    EXPECT_FALSE(q.pop(v)); // and then report exhaustion
}

// ---------------------------------------------------------------------
// Annotated synchronization primitives (common/mutex.hh)
// ---------------------------------------------------------------------

TEST(MutexPrimitives, MutexLockAndCvLockProtectSharedState)
{
    Mutex mutex;
    std::condition_variable cv;
    int value = 0;
    bool ready = false;

    std::thread producer([&] {
        MutexLock lock(mutex);
        value = 42;
        ready = true;
        cv.notify_one();
    });
    {
        CvLock lock(mutex);
        while (!ready)
            lock.wait(cv);
        EXPECT_EQ(value, 42);
    }
    producer.join();
}

TEST(MutexPrimitives, TryLockReportsContention)
{
    Mutex mutex;
    mutex.lock();
    std::thread other([&] { EXPECT_FALSE(mutex.tryLock()); });
    other.join();
    mutex.unlock();
    ASSERT_TRUE(mutex.tryLock());
    mutex.unlock();
}

TEST(ThreadAffinity, SameThreadUseIsQuiet)
{
    ThreadAffinity affinity;
    affinity.assertHeld(); // binds to this thread
    affinity.assertHeld(); // re-checks quietly
}

TEST(ThreadAffinity, RebindHandsOffToAnotherThread)
{
    ThreadAffinity affinity;
    affinity.assertHeld();
    affinity.rebind(); // documented hand-off point
    std::thread other([&] { affinity.assertHeld(); });
    other.join();
}

TEST(ThreadAffinityDeathTest, CrossThreadUsePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ThreadAffinity affinity;
    affinity.assertHeld();
    EXPECT_DEATH(
        {
            std::thread other([&] { affinity.assertHeld(); });
            other.join();
        },
        "thread-affine state");
}

} // namespace rtgs
