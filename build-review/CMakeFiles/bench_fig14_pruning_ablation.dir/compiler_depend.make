# Empty compiler generated dependencies file for bench_fig14_pruning_ablation.
# This may be replaced when dependencies are built.
