file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hw_config.dir/bench/bench_table4_hw_config.cc.o"
  "CMakeFiles/bench_table4_hw_config.dir/bench/bench_table4_hw_config.cc.o.d"
  "bench_table4_hw_config"
  "bench_table4_hw_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hw_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
