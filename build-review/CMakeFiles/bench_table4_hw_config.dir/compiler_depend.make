# Empty compiler generated dependencies file for bench_table4_hw_config.
# This may be replaced when dependencies are built.
