file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_rasterizer.dir/bench/bench_micro_rasterizer.cc.o"
  "CMakeFiles/bench_micro_rasterizer.dir/bench/bench_micro_rasterizer.cc.o.d"
  "bench_micro_rasterizer"
  "bench_micro_rasterizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_rasterizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
