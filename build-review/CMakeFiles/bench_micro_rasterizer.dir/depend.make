# Empty dependencies file for bench_micro_rasterizer.
# This may be replaced when dependencies are built.
