
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_async_slam.cc" "CMakeFiles/rtgs_tests.dir/tests/test_async_slam.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_async_slam.cc.o.d"
  "/root/repo/tests/test_common.cc" "CMakeFiles/rtgs_tests.dir/tests/test_common.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_common.cc.o.d"
  "/root/repo/tests/test_core.cc" "CMakeFiles/rtgs_tests.dir/tests/test_core.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_core.cc.o.d"
  "/root/repo/tests/test_data.cc" "CMakeFiles/rtgs_tests.dir/tests/test_data.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_data.cc.o.d"
  "/root/repo/tests/test_fault_injection.cc" "CMakeFiles/rtgs_tests.dir/tests/test_fault_injection.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_fault_injection.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "CMakeFiles/rtgs_tests.dir/tests/test_geometry.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_geometry.cc.o.d"
  "/root/repo/tests/test_gs_backward.cc" "CMakeFiles/rtgs_tests.dir/tests/test_gs_backward.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_gs_backward.cc.o.d"
  "/root/repo/tests/test_gs_backward_parallel.cc" "CMakeFiles/rtgs_tests.dir/tests/test_gs_backward_parallel.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_gs_backward_parallel.cc.o.d"
  "/root/repo/tests/test_gs_cow.cc" "CMakeFiles/rtgs_tests.dir/tests/test_gs_cow.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_gs_cow.cc.o.d"
  "/root/repo/tests/test_gs_equivalence.cc" "CMakeFiles/rtgs_tests.dir/tests/test_gs_equivalence.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_gs_equivalence.cc.o.d"
  "/root/repo/tests/test_gs_forward.cc" "CMakeFiles/rtgs_tests.dir/tests/test_gs_forward.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_gs_forward.cc.o.d"
  "/root/repo/tests/test_health_monitor.cc" "CMakeFiles/rtgs_tests.dir/tests/test_health_monitor.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_health_monitor.cc.o.d"
  "/root/repo/tests/test_hw.cc" "CMakeFiles/rtgs_tests.dir/tests/test_hw.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_hw.cc.o.d"
  "/root/repo/tests/test_hw_memory.cc" "CMakeFiles/rtgs_tests.dir/tests/test_hw_memory.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_hw_memory.cc.o.d"
  "/root/repo/tests/test_image.cc" "CMakeFiles/rtgs_tests.dir/tests/test_image.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_image.cc.o.d"
  "/root/repo/tests/test_multi_view.cc" "CMakeFiles/rtgs_tests.dir/tests/test_multi_view.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_multi_view.cc.o.d"
  "/root/repo/tests/test_properties.cc" "CMakeFiles/rtgs_tests.dir/tests/test_properties.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_properties.cc.o.d"
  "/root/repo/tests/test_rtgs_slam.cc" "CMakeFiles/rtgs_tests.dir/tests/test_rtgs_slam.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_rtgs_slam.cc.o.d"
  "/root/repo/tests/test_similarity_gate.cc" "CMakeFiles/rtgs_tests.dir/tests/test_similarity_gate.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_similarity_gate.cc.o.d"
  "/root/repo/tests/test_slam.cc" "CMakeFiles/rtgs_tests.dir/tests/test_slam.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_slam.cc.o.d"
  "/root/repo/tests/test_slam_integration.cc" "CMakeFiles/rtgs_tests.dir/tests/test_slam_integration.cc.o" "gcc" "CMakeFiles/rtgs_tests.dir/tests/test_slam_integration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/rtgs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
