# Empty compiler generated dependencies file for rtgs_tests.
# This may be replaced when dependencies are built.
