file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_quality_tradeoff.dir/bench/bench_fig13_quality_tradeoff.cc.o"
  "CMakeFiles/bench_fig13_quality_tradeoff.dir/bench/bench_fig13_quality_tradeoff.cc.o.d"
  "bench_fig13_quality_tradeoff"
  "bench_fig13_quality_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_quality_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
