# Empty compiler generated dependencies file for bench_fig13_quality_tradeoff.
# This may be replaced when dependencies are built.
