file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_gradient_distribution.dir/bench/bench_fig4_gradient_distribution.cc.o"
  "CMakeFiles/bench_fig4_gradient_distribution.dir/bench/bench_fig4_gradient_distribution.cc.o.d"
  "bench_fig4_gradient_distribution"
  "bench_fig4_gradient_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_gradient_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
