# Empty dependencies file for bench_fig16_replica_scenes.
# This may be replaced when dependencies are built.
