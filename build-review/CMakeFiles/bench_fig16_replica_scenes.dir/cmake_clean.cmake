file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_replica_scenes.dir/bench/bench_fig16_replica_scenes.cc.o"
  "CMakeFiles/bench_fig16_replica_scenes.dir/bench/bench_fig16_replica_scenes.cc.o.d"
  "bench_fig16_replica_scenes"
  "bench_fig16_replica_scenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_replica_scenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
