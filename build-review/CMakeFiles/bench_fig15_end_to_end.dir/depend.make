# Empty dependencies file for bench_fig15_end_to_end.
# This may be replaced when dependencies are built.
