file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_slam_baselines.dir/bench/bench_table2_slam_baselines.cc.o"
  "CMakeFiles/bench_table2_slam_baselines.dir/bench/bench_table2_slam_baselines.cc.o.d"
  "bench_table2_slam_baselines"
  "bench_table2_slam_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_slam_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
