# Empty dependencies file for bench_table2_slam_baselines.
# This may be replaced when dependencies are built.
