# Empty compiler generated dependencies file for bench_fig17_speedup_breakdown.
# This may be replaced when dependencies are built.
