file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_speedup_breakdown.dir/bench/bench_fig17_speedup_breakdown.cc.o"
  "CMakeFiles/bench_fig17_speedup_breakdown.dir/bench/bench_fig17_speedup_breakdown.cc.o.d"
  "bench_fig17_speedup_breakdown"
  "bench_fig17_speedup_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_speedup_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
