# Empty compiler generated dependencies file for bench_fault_scenarios.
# This may be replaced when dependencies are built.
