file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_scenarios.dir/bench/bench_fault_scenarios.cc.o"
  "CMakeFiles/bench_fault_scenarios.dir/bench/bench_fault_scenarios.cc.o.d"
  "bench_fault_scenarios"
  "bench_fault_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
