
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "CMakeFiles/rtgs.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/rtgs.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/rtgs.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/rtgs.dir/src/common/table.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/common/table.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/rtgs.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/core/baselines.cc" "CMakeFiles/rtgs.dir/src/core/baselines.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/core/baselines.cc.o.d"
  "/root/repo/src/core/downsampling.cc" "CMakeFiles/rtgs.dir/src/core/downsampling.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/core/downsampling.cc.o.d"
  "/root/repo/src/core/importance.cc" "CMakeFiles/rtgs.dir/src/core/importance.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/core/importance.cc.o.d"
  "/root/repo/src/core/pruning.cc" "CMakeFiles/rtgs.dir/src/core/pruning.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/core/pruning.cc.o.d"
  "/root/repo/src/core/rtgs_api.cc" "CMakeFiles/rtgs.dir/src/core/rtgs_api.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/core/rtgs_api.cc.o.d"
  "/root/repo/src/core/rtgs_slam.cc" "CMakeFiles/rtgs.dir/src/core/rtgs_slam.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/core/rtgs_slam.cc.o.d"
  "/root/repo/src/core/similarity_gate.cc" "CMakeFiles/rtgs.dir/src/core/similarity_gate.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/core/similarity_gate.cc.o.d"
  "/root/repo/src/data/dataset.cc" "CMakeFiles/rtgs.dir/src/data/dataset.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/data/dataset.cc.o.d"
  "/root/repo/src/data/fault_injector.cc" "CMakeFiles/rtgs.dir/src/data/fault_injector.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/data/fault_injector.cc.o.d"
  "/root/repo/src/data/scene.cc" "CMakeFiles/rtgs.dir/src/data/scene.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/data/scene.cc.o.d"
  "/root/repo/src/data/trajectory.cc" "CMakeFiles/rtgs.dir/src/data/trajectory.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/data/trajectory.cc.o.d"
  "/root/repo/src/geometry/camera.cc" "CMakeFiles/rtgs.dir/src/geometry/camera.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/geometry/camera.cc.o.d"
  "/root/repo/src/geometry/quat.cc" "CMakeFiles/rtgs.dir/src/geometry/quat.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/geometry/quat.cc.o.d"
  "/root/repo/src/geometry/se3.cc" "CMakeFiles/rtgs.dir/src/geometry/se3.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/geometry/se3.cc.o.d"
  "/root/repo/src/gs/backward.cc" "CMakeFiles/rtgs.dir/src/gs/backward.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/gs/backward.cc.o.d"
  "/root/repo/src/gs/gaussian.cc" "CMakeFiles/rtgs.dir/src/gs/gaussian.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/gs/gaussian.cc.o.d"
  "/root/repo/src/gs/projection.cc" "CMakeFiles/rtgs.dir/src/gs/projection.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/gs/projection.cc.o.d"
  "/root/repo/src/gs/rasterizer.cc" "CMakeFiles/rtgs.dir/src/gs/rasterizer.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/gs/rasterizer.cc.o.d"
  "/root/repo/src/gs/reference.cc" "CMakeFiles/rtgs.dir/src/gs/reference.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/gs/reference.cc.o.d"
  "/root/repo/src/gs/render_pipeline.cc" "CMakeFiles/rtgs.dir/src/gs/render_pipeline.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/gs/render_pipeline.cc.o.d"
  "/root/repo/src/gs/sorting.cc" "CMakeFiles/rtgs.dir/src/gs/sorting.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/gs/sorting.cc.o.d"
  "/root/repo/src/gs/tiling.cc" "CMakeFiles/rtgs.dir/src/gs/tiling.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/gs/tiling.cc.o.d"
  "/root/repo/src/hw/config.cc" "CMakeFiles/rtgs.dir/src/hw/config.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/hw/config.cc.o.d"
  "/root/repo/src/hw/energy.cc" "CMakeFiles/rtgs.dir/src/hw/energy.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/hw/energy.cc.o.d"
  "/root/repo/src/hw/gpu_model.cc" "CMakeFiles/rtgs.dir/src/hw/gpu_model.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/hw/gpu_model.cc.o.d"
  "/root/repo/src/hw/memory.cc" "CMakeFiles/rtgs.dir/src/hw/memory.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/hw/memory.cc.o.d"
  "/root/repo/src/hw/rtgs_model.cc" "CMakeFiles/rtgs.dir/src/hw/rtgs_model.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/hw/rtgs_model.cc.o.d"
  "/root/repo/src/hw/system_model.cc" "CMakeFiles/rtgs.dir/src/hw/system_model.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/hw/system_model.cc.o.d"
  "/root/repo/src/hw/trace.cc" "CMakeFiles/rtgs.dir/src/hw/trace.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/hw/trace.cc.o.d"
  "/root/repo/src/image/io.cc" "CMakeFiles/rtgs.dir/src/image/io.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/image/io.cc.o.d"
  "/root/repo/src/image/metrics.cc" "CMakeFiles/rtgs.dir/src/image/metrics.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/image/metrics.cc.o.d"
  "/root/repo/src/image/resize.cc" "CMakeFiles/rtgs.dir/src/image/resize.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/image/resize.cc.o.d"
  "/root/repo/src/slam/evaluation.cc" "CMakeFiles/rtgs.dir/src/slam/evaluation.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/evaluation.cc.o.d"
  "/root/repo/src/slam/health_monitor.cc" "CMakeFiles/rtgs.dir/src/slam/health_monitor.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/health_monitor.cc.o.d"
  "/root/repo/src/slam/keyframe.cc" "CMakeFiles/rtgs.dir/src/slam/keyframe.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/keyframe.cc.o.d"
  "/root/repo/src/slam/loss.cc" "CMakeFiles/rtgs.dir/src/slam/loss.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/loss.cc.o.d"
  "/root/repo/src/slam/map_worker.cc" "CMakeFiles/rtgs.dir/src/slam/map_worker.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/map_worker.cc.o.d"
  "/root/repo/src/slam/mapper.cc" "CMakeFiles/rtgs.dir/src/slam/mapper.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/mapper.cc.o.d"
  "/root/repo/src/slam/optimizer.cc" "CMakeFiles/rtgs.dir/src/slam/optimizer.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/optimizer.cc.o.d"
  "/root/repo/src/slam/pipeline.cc" "CMakeFiles/rtgs.dir/src/slam/pipeline.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/pipeline.cc.o.d"
  "/root/repo/src/slam/preprocess.cc" "CMakeFiles/rtgs.dir/src/slam/preprocess.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/preprocess.cc.o.d"
  "/root/repo/src/slam/profiler.cc" "CMakeFiles/rtgs.dir/src/slam/profiler.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/profiler.cc.o.d"
  "/root/repo/src/slam/tracker.cc" "CMakeFiles/rtgs.dir/src/slam/tracker.cc.o" "gcc" "CMakeFiles/rtgs.dir/src/slam/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
