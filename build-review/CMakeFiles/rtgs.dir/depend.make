# Empty dependencies file for rtgs.
# This may be replaced when dependencies are built.
