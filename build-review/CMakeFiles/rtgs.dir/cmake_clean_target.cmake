file(REMOVE_RECURSE
  "librtgs.a"
)
