file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_algorithm_comparison.dir/bench/bench_table6_algorithm_comparison.cc.o"
  "CMakeFiles/bench_table6_algorithm_comparison.dir/bench/bench_table6_algorithm_comparison.cc.o.d"
  "bench_table6_algorithm_comparison"
  "bench_table6_algorithm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_algorithm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
