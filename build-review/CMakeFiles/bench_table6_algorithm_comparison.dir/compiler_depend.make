# Empty compiler generated dependencies file for bench_table6_algorithm_comparison.
# This may be replaced when dependencies are built.
