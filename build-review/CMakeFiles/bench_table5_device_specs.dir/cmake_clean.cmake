file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_device_specs.dir/bench/bench_table5_device_specs.cc.o"
  "CMakeFiles/bench_table5_device_specs.dir/bench/bench_table5_device_specs.cc.o.d"
  "bench_table5_device_specs"
  "bench_table5_device_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_device_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
