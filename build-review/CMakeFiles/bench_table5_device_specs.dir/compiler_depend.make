# Empty compiler generated dependencies file for bench_table5_device_specs.
# This may be replaced when dependencies are built.
