# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(rtgs_tests "/root/repo/build-review/rtgs_tests")
set_tests_properties(rtgs_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;49;add_test;/root/repo/CMakeLists.txt;0;")
