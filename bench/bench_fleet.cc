/**
 * @file
 * Fleet-runtime bench: N concurrent SLAM sessions multiplexed over a
 * shared work-stealing executor, swept across sessions x workers
 * under bursty frame arrivals. Per cell it records aggregate
 * throughput (frames/s across all sessions), p50/p99 submit-to-
 * completion frame latency, peak RSS, and executor counters (turns,
 * steals).
 *
 * Two determinism contracts are enforced via the exit code (and gated
 * by tools/bench_diff.py against the committed trajectory):
 *   fleet_of_1_byte_identical      a single session hosted in the
 *                                  fleet produces byte-identical
 *                                  trajectory + map to the same
 *                                  profile run standalone;
 *   worker_count_bitwise_identical a 2-session fleet produces
 *                                  per-session byte-identical outputs
 *                                  on every executor width swept.
 * Throughput/latency/RSS fields are informational (machine-
 * dependent); the booleans are the gate.
 *
 * Env knobs: RTGS_BENCH_FLEET_SESSIONS / RTGS_BENCH_FLEET_WORKERS cap
 * the sweep (default 4 / 4) so CI smoke stays cheap, plus the usual
 * RTGS_BENCH_SCALE / RTGS_BENCH_FRAMES.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "slam/fleet_runtime.hh"
#include "slam/pipeline.hh"

namespace rtgs::bench
{

namespace
{

using slam::AdmitDecision;
using slam::FleetConfig;
using slam::FleetRuntime;
using slam::FleetSessionConfig;
using slam::FleetSessionStats;

/** Scheduling-bench SLAM profile: real pipeline, trimmed iteration
 *  counts — the quantity under test is the scheduler, not quality. */
slam::SlamConfig
fleetSlamConfig()
{
    slam::SlamConfig cfg =
        slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::MonoGs);
    cfg.tracker.iterations = 10;
    cfg.mapper.iterations = 12;
    cfg.kfInterval = 4;
    return cfg;
}

data::DatasetSpec
fleetSpec()
{
    return benchSpec(data::DatasetSpec::tumLike(benchScale()));
}

size_t
envCap(const char *name, size_t fallback)
{
    if (const char *s = std::getenv(name)) {
        int v = std::atoi(s);
        if (v > 0)
            return static_cast<size_t>(v);
    }
    return fallback;
}

/** FNV-1a over a byte range (the repo's standard output probe). */
u64
fnv1a(const void *bytes, size_t n, u64 hash)
{
    const unsigned char *p = static_cast<const unsigned char *>(bytes);
    for (size_t i = 0; i < n; ++i) {
        hash ^= p[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

u64
outputHash(const slam::SlamSystem &sys)
{
    u64 hash = 1469598103934665603ull;
    for (const SE3 &pose : sys.trajectory()) {
        hash = fnv1a(&pose.rot, sizeof(pose.rot), hash);
        hash = fnv1a(&pose.trans, sizeof(pose.trans), hash);
    }
    const gs::GaussianCloud &cloud = sys.cloud();
    auto mix = [&hash](const auto &column) {
        using T = typename std::decay_t<decltype(column)>::value_type;
        if (column.size())
            hash = fnv1a(column.data(), column.size() * sizeof(T), hash);
    };
    mix(cloud.positions);
    mix(cloud.logScales);
    mix(cloud.rotations);
    mix(cloud.opacityLogits);
    mix(cloud.shCoeffs);
    mix(cloud.active);
    return hash;
}

/** Peak resident set (VmHWM) in MB; 0 when /proc is unavailable. */
double
peakRssMb()
{
    std::FILE *status = std::fopen("/proc/self/status", "r");
    if (!status)
        return 0;
    char line[256];
    double mb = 0;
    while (std::fgets(line, sizeof(line), status)) {
        long kb = 0;
        if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
            mb = static_cast<double>(kb) / 1024.0;
            break;
        }
    }
    std::fclose(status);
    return mb;
}

struct CellResult
{
    size_t sessions = 0;
    size_t workers = 0;
    double wallSeconds = 0;
    double aggregateFps = 0;
    double p50LatencyMs = 0;
    double p99LatencyMs = 0;
    double peakRssMb = 0;
    u64 turns = 0;
    u64 steals = 0;
    std::vector<u64> hashes; //!< per-session output probes
};

/**
 * One sweep cell: N sessions on W workers under a bursty arrival
 * pattern — half of each session's sequence is staged while the fleet
 * is paused (the burst), the rest is submitted round-robin against
 * live backpressure.
 */
CellResult
runCell(data::SyntheticDataset &ds, size_t sessions, size_t workers)
{
    CellResult cell;
    cell.sessions = sessions;
    cell.workers = workers;

    FleetConfig fleet_cfg;
    fleet_cfg.workers = workers;
    fleet_cfg.maxActiveSessions = sessions;
    fleet_cfg.startPaused = true;
    FleetRuntime fleet(fleet_cfg);

    std::vector<FleetRuntime::SessionId> ids(sessions, 0);
    for (size_t s = 0; s < sessions; ++s) {
        FleetSessionConfig session;
        session.slam = fleetSlamConfig();
        session.intrinsics = ds.intrinsics();
        session.frameQueueDepth = ds.frameCount();
        if (fleet.openSession(session, ids[s]) !=
            AdmitDecision::Admitted) {
            std::fprintf(stderr, "session %zu not admitted\n", s);
            std::exit(2);
        }
    }

    const u32 burst = ds.frameCount() / 2;
    slam::Stopwatch wall;
    for (u32 f = 0; f < burst; ++f)
        for (size_t s = 0; s < sessions; ++s)
            fleet.submitFrame(ids[s], ds.frame(f));
    fleet.start(); // the staged burst hits the workers all at once
    for (u32 f = burst; f < ds.frameCount(); ++f)
        for (size_t s = 0; s < sessions; ++s)
            fleet.submitFrame(ids[s], ds.frame(f));
    for (size_t s = 0; s < sessions; ++s)
        fleet.drainSession(ids[s]);
    cell.wallSeconds = wall.seconds();

    std::vector<double> latencies;
    u64 completed = 0;
    for (size_t s = 0; s < sessions; ++s) {
        FleetSessionStats stats = fleet.sessionStats(ids[s]);
        completed += stats.completed;
        cell.turns += stats.turns;
        latencies.insert(latencies.end(), stats.latenciesSeconds.begin(),
                         stats.latenciesSeconds.end());
        cell.hashes.push_back(outputHash(*fleet.system(ids[s])));
    }
    std::sort(latencies.begin(), latencies.end());
    if (!latencies.empty()) {
        cell.p50LatencyMs = latencies[latencies.size() / 2] * 1e3;
        cell.p99LatencyMs =
            latencies[std::min(latencies.size() - 1,
                               latencies.size() * 99 / 100)] *
            1e3;
    }
    cell.aggregateFps = cell.wallSeconds > 0
                            ? static_cast<double>(completed) /
                                  cell.wallSeconds
                            : 0;
    cell.steals = fleet.executor().steals();
    cell.peakRssMb = peakRssMb();
    return cell;
}

} // namespace

} // namespace rtgs::bench

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("fleet runtime: sessions x workers sweep");
    data::SyntheticDataset ds(fleetSpec());

    const size_t max_sessions = envCap("RTGS_BENCH_FLEET_SESSIONS", 4);
    const size_t max_workers = envCap("RTGS_BENCH_FLEET_WORKERS", 4);

    // Gate 1: fleet-of-1 must be byte-identical to standalone.
    slam::SlamSystem solo(fleetSlamConfig(), ds.intrinsics());
    for (u32 f = 0; f < ds.frameCount(); ++f)
        solo.processFrame(ds.frame(f));
    solo.waitForMapping();
    const u64 solo_hash = outputHash(solo);

    std::vector<CellResult> cells;
    bool fleet_of_1_identical = true;
    bool worker_count_identical = true;
    std::vector<u64> two_session_hashes; // reference: first width
    for (size_t sessions : {size_t(1), size_t(2), size_t(4)}) {
        if (sessions > max_sessions)
            continue;
        for (size_t workers : {size_t(1), size_t(2), size_t(4)}) {
            if (workers > max_workers)
                continue;
            CellResult cell = runCell(ds, sessions, workers);
            if (sessions == 1 && cell.hashes[0] != solo_hash)
                fleet_of_1_identical = false;
            if (sessions == 2) {
                // Gate 2: per-session outputs identical across widths.
                if (two_session_hashes.empty())
                    two_session_hashes = cell.hashes;
                else if (cell.hashes != two_session_hashes)
                    worker_count_identical = false;
            }
            std::printf("sessions=%zu workers=%zu  %6.2f fps  "
                        "p50 %7.2f ms  p99 %7.2f ms  rss %6.1f MB  "
                        "turns %llu  steals %llu\n",
                        sessions, workers, cell.aggregateFps,
                        cell.p50LatencyMs, cell.p99LatencyMs,
                        cell.peakRssMb,
                        static_cast<unsigned long long>(cell.turns),
                        static_cast<unsigned long long>(cell.steals));
            cells.push_back(std::move(cell));
        }
    }

    std::printf("\nfleet_of_1_byte_identical: %s\n",
                fleet_of_1_identical ? "true" : "false");
    std::printf("worker_count_bitwise_identical: %s\n",
                worker_count_identical ? "true" : "false");

    std::string path;
    std::FILE *out =
        openBenchJson("RTGS_BENCH_JSON_FLEET", "BENCH_fleet.json", path);
    if (!out)
        return 1;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"fleet\",\n"
                 "  \"frames\": %u,\n"
                 "  \"scale\": %.3f,\n"
                 "  \"fleet_of_1_byte_identical\": %s,\n"
                 "  \"worker_count_bitwise_identical\": %s,\n"
                 "  \"cells\": [\n",
                 benchFrames(), static_cast<double>(benchScale()),
                 fleet_of_1_identical ? "true" : "false",
                 worker_count_identical ? "true" : "false");
    for (size_t i = 0; i < cells.size(); ++i) {
        const CellResult &c = cells[i];
        std::fprintf(out,
                     "    {\"sessions\": %zu, \"workers\": %zu, "
                     "\"aggregate_fps\": %.3f, "
                     "\"p50_latency_ms\": %.3f, "
                     "\"p99_latency_ms\": %.3f, "
                     "\"peak_rss_mb\": %.1f, \"turns\": %llu, "
                     "\"steals\": %llu}%s\n",
                     c.sessions, c.workers, c.aggregateFps,
                     c.p50LatencyMs, c.p99LatencyMs, c.peakRssMb,
                     static_cast<unsigned long long>(c.turns),
                     static_cast<unsigned long long>(c.steals),
                     i + 1 == cells.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());

    // Hard gate: only the determinism contracts fail the bench; the
    // throughput/latency/RSS numbers are machine-dependent and gated
    // informationally by tools/bench_diff.py.
    return fleet_of_1_identical && worker_count_identical ? 0 : 1;
}
