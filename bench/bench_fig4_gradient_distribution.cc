/**
 * @file
 * Regenerates Fig. 4: the per-Gaussian gradient-magnitude distribution
 * during tracking. Expected shape: heavily skewed — a small fraction
 * of Gaussians (paper: top 14%) carries the bulk of the gradient mass,
 * motivating adaptive pruning.
 */

#include <cmath>

#include "bench_util.hh"
#include "common/stats.hh"
#include "core/importance.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 4: Gaussian gradient distribution during "
                     "tracking (MonoGS-like, TUM-like)");

    data::SyntheticDataset dataset(
        benchSpec(data::DatasetSpec::tumLike(benchScale())));
    core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
    cfg.enablePruning = false;
    cfg.enableDownsampling = false;

    core::RtgsSlam rtgs(cfg, dataset.intrinsics());
    std::vector<Real> scores;
    rtgs.setExternalTrackHook(
        [&](const slam::TrackIterationContext &ctx) {
            core::accumulateScores(
                scores, core::importanceScores(ctx.backward->grads));
        });
    for (u32 f = 0; f < dataset.frameCount(); ++f)
        rtgs.processFrame(dataset.frame(f));

    // Log-scale histogram of gradient magnitudes (Fig. 4's x axis).
    Histogram hist(-4, 1, 10); // log10 bins 1e-4 .. 1e1
    size_t zero = 0;
    for (Real s : scores) {
        if (s <= 0) {
            ++zero;
            continue;
        }
        hist.add(std::log10(static_cast<double>(s)));
    }

    TablePrinter table({"gradient magnitude", "Gaussians"});
    table.addRow({"0 (never touched)", std::to_string(zero)});
    for (size_t b = 0; b < hist.bins(); ++b) {
        char label[64];
        std::snprintf(label, sizeof(label), "1e%+.1f .. 1e%+.1f",
                      hist.binLo(b), hist.binHi(b));
        table.addRow({label, std::to_string(hist.binCount(b))});
    }
    table.print();

    double top14 = core::topFractionMass(scores, 0.14);
    double top50 = core::topFractionMass(scores, 0.50);
    std::printf("\ngradient mass carried by the top 14%% of Gaussians: "
                "%.0f%%\n", top14 * 100);
    std::printf("gradient mass carried by the top 50%% of Gaussians: "
                "%.0f%%\n", top50 * 100);
    std::printf("\nShape check vs paper Fig. 4: the distribution is "
                "heavily skewed; the paper\nfinds the top 14%% carrying "
                "the majority of the gradient magnitude.\n");
    return 0;
}
