/**
 * @file
 * Fault-injection stress scenarios for the robustness layer: runs the
 * SLAM system with the tracking-health monitor enabled against
 * deterministic fault schedules (dropped frames, transport bursts,
 * out-of-order timestamps, corrupted regions, exposure shifts, depth
 * dropout, adversarial scene dynamics, and a map-queue flood under the
 * drop-oldest overflow policy) and reports per-scenario ATE RMSE,
 * PSNR, recovery-frame counts, relocalization activity, and
 * queue-overflow drop accounting.
 *
 * The tracking_lost_recovery scenario models a transport stall that
 * replays an earlier segment of the stream: a full-frame occluder
 * burst starves tracking (the monitor escalates to LOST and the pose
 * coasts forward on the constant-velocity model) while the camera is
 * teleported back into already-mapped territory underneath it. When
 * the occluder lifts, the coasting guess is far outside the tracker's
 * convergence basin but the true view is one the keyframe database
 * knows — exactly the situation map-based relocalization exists for.
 * Run twice — relocalizer on vs the coasting baseline — and judged on
 * time-to-reacquire and a head-anchored post-recovery ATE (aligned on
 * the pre-fault frames only, so the Umeyama fit cannot absorb the
 * post-fault divergence).
 *
 * Also pins the central robustness contracts in passing: a clean run
 * with the monitor ON — and with the relocalizer ON — is
 * byte-identical to one with both OFF.
 *
 * Writes BENCH_fault_scenarios.json (override with
 * RTGS_BENCH_JSON_FAULT).
 */

#include "bench_util.hh"

#include <cmath>
#include <cstring>

#include "data/fault_injector.hh"
#include "data/scene.hh"
#include "slam/evaluation.hh"
#include "slam/pipeline.hh"

namespace
{

using namespace rtgs;

/** Everything one stress scenario reports. */
struct ScenarioOutcome
{
    std::string name;
    size_t framesSeen = 0;
    size_t framesDelivered = 0;
    size_t streamDropped = 0;    //!< frames the schedule dropped
    size_t rejectedInputs = 0;   //!< frames the monitor refused
    size_t heldPoses = 0;        //!< post-track holds (divergence)
    size_t framesNotOk = 0;      //!< frames reported != OK
    size_t recoveries = 0;       //!< completed recovery episodes
    size_t forcedKeyframes = 0;  //!< recovery re-anchors
    size_t mapJobsDropped = 0;   //!< queue-overflow evictions
    size_t watchdogTrips = 0;
    size_t relocAttempts = 0;    //!< relocalization searches run
    size_t relocAccepted = 0;    //!< searches whose pose was accepted
    size_t relocCandidates = 0;  //!< candidate poses probe-scored
    u32 framesLost = 0;          //!< frames that ended a step LOST
    size_t occludedFrames = 0;   //!< frames with the occluder composited
    size_t blurredFrames = 0;    //!< frames with motion blur applied
    double ateRmse = 0;
    double psnrDb = 0;
    /** ATE over delivered frames with source index >= tailStart;
     *  negative when the scenario has no tail window. */
    double postAteRmse = -1;
    /** Delivered frames from the first LOST report to reacquisition
     *  (accepted relocalization or return to OK). */
    u32 reacquireFrames = 0;
    bool wentLost = false;
    bool reacquired = false;
};

slam::SlamConfig
scenarioConfig(bool health_on)
{
    slam::SlamConfig cfg =
        slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::MonoGs);
    cfg.tracker.iterations = 10;
    cfg.mapper.iterations = 12;
    cfg.kfInterval = 4;
    cfg.health.enabled = health_on;
    return cfg;
}

/** The lost-recovery arms share everything except the relocalizer, so
 *  the comparison isolates exactly the contribution of map-based
 *  relocalization. */
slam::SlamConfig
lostRecoveryConfig(bool reloc_on)
{
    slam::SlamConfig cfg = scenarioConfig(true);
    cfg.health.lostPatience = 2;
    cfg.health.probePsnrMinDb = Real(13);
    // A denser keyframe cadence populates the relocalizer's pose/probe
    // database finely enough that an anchor sits near any revisited
    // view.
    cfg.kfInterval = 2;
    cfg.reloc.enabled = reloc_on;
    cfg.reloc.extrapolationSteps = 6;
    cfg.reloc.acceptPsnrMinDb = Real(15);
    return cfg;
}

/**
 * Stream-level adversarial edit applied before the fault injector: at
 * `teleportAt` the delivered images jump back `teleportBack` source
 * frames (a transport stall replaying an earlier segment), and the
 * first `shroudLength` frames after the jump carry a full-frame
 * occluder so the discontinuity arrives while tracking is starved —
 * the monitor must coast blind across it.
 */
struct StreamMutation
{
    u32 teleportAt = 0; //!< 0 disables the mutation entirely
    u32 teleportBack = 0;
    u32 shroudLength = 0;
};

/** Feed the dataset through a fault schedule into a SlamSystem. */
ScenarioOutcome
runScenario(const std::string &name, data::SyntheticDataset &ds,
            const data::FaultSchedule &schedule,
            const slam::SlamConfig &cfg,
            const StreamMutation &mut = {}, u32 fault_start = 0,
            u32 tail_start = 0)
{
    slam::SlamSystem sys(cfg, ds.intrinsics());
    data::FaultInjector injector(schedule);

    // Full-frame shroud for the teleport window: parked mid-view at
    // near depth, sized to blot out nearly everything the tracker
    // could anchor on.
    data::OccluderSpec shroud;
    shroud.sizeFraction = Real(0.95);
    shroud.pathStart = {Real(0.5), Real(0.5)};
    shroud.pathEnd = {Real(0.5), Real(0.5)};

    ScenarioOutcome out;
    out.name = name;
    std::vector<SE3> gt;          // aligned with the delivered stream
    std::vector<u32> disp_index;  // stream position per delivered frame
    u32 mid_delivered = 0;
    for (u32 f = 0; f < ds.frameCount(); ++f) {
        u32 src = f;
        data::Frame source = ds.frame(f);
        if (mut.teleportAt > 0 && f >= mut.teleportAt) {
            src = f - std::min(mut.teleportBack, f);
            source = ds.frame(src);
            source.index = f;
            source.timestamp = ds.frame(f).timestamp;
            if (f < mut.teleportAt + mut.shroudLength) {
                data::compositeOccluder(source.rgb, source.depth,
                                        shroud, Real(0.5));
                ++out.occludedFrames;
            }
        }
        auto frame = injector.process(source);
        if (!frame)
            continue;
        slam::FrameReport report = sys.processFrame(*frame);
        gt.push_back(ds.gtPose(src));
        disp_index.push_back(f);
        if (gt.size() == (ds.frameCount() + 1) / 2)
            mid_delivered = src;
        if (report.healthState != slam::HealthState::Ok)
            ++out.framesNotOk;
        if (report.forcedRecoveryKeyframe)
            ++out.forcedKeyframes;
        if (report.healthState == slam::HealthState::Lost &&
            !out.wentLost) {
            out.wentLost = true;
            out.reacquireFrames = 0;
        } else if (out.wentLost && !out.reacquired) {
            ++out.reacquireFrames;
            if (report.relocAccepted ||
                report.healthState == slam::HealthState::Ok)
                out.reacquired = true;
        }
        out.framesLost = report.framesLost;
    }
    sys.waitForMapping();

    data::FaultStats stats = injector.stats();
    out.framesSeen = stats.framesSeen;
    out.framesDelivered = stats.framesDelivered;
    out.streamDropped = stats.dropped;
    out.occludedFrames += stats.occludedFrames;
    out.blurredFrames = stats.motionBlurredFrames;
    if (const slam::HealthMonitor *monitor = sys.healthMonitor()) {
        out.rejectedInputs = monitor->rejectedInputs();
        out.heldPoses = monitor->heldPoses();
        out.recoveries = monitor->recoveries();
    }
    if (const slam::Relocalizer *reloc = sys.relocalizer()) {
        out.relocAttempts = reloc->attempts();
        out.relocAccepted = reloc->accepted();
        out.relocCandidates = reloc->candidatesScored();
    }
    out.mapJobsDropped = sys.mapJobsDropped();
    out.watchdogTrips = sys.mapWatchdogTrips();
    out.ateRmse = slam::computeAte(sys.trajectory(), gt).rmse;
    if (tail_start > 0 && fault_start > 0) {
        // Head-anchored post-recovery accuracy: align on the pre-fault
        // frames only, then measure the post-fault tail under that
        // fixed alignment. Aligning over the tail itself (plain ATE)
        // would let the Umeyama fit absorb a systematic post-fault
        // offset — a trajectory that coasts off into the wrong part of
        // the room can score as well as one that reacquired.
        std::vector<SE3> est_head, gt_head;
        const std::vector<SE3> &est = sys.trajectory();
        for (size_t i = 0; i < disp_index.size() && i < est.size();
             ++i) {
            if (disp_index[i] < fault_start) {
                est_head.push_back(est[i]);
                gt_head.push_back(gt[i]);
            }
        }
        if (est_head.size() >= 3) {
            SE3 T = slam::alignTrajectories(est_head, gt_head);
            double sum_sq = 0;
            u32 n = 0;
            for (size_t i = 0;
                 i < disp_index.size() && i < est.size(); ++i) {
                if (disp_index[i] < tail_start)
                    continue;
                Real e =
                    (T.apply(est[i].centre()) - gt[i].centre()).norm();
                sum_sq += static_cast<double>(e) * e;
                ++n;
            }
            if (n > 0)
                out.postAteRmse = std::sqrt(sum_sq / n);
        }
    }
    // PSNR against the CLEAN mid frame: the map must explain the true
    // scene even when the input stream was perturbed.
    out.psnrDb = psnr(sys.renderView(ds.gtPose(mid_delivered)),
                      ds.frame(mid_delivered).rgb);
    return out;
}

/** Byte-compare two trajectories. */
bool
identicalTrajectories(const std::vector<SE3> &a,
                      const std::vector<SE3> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].rot, &b[i].rot, sizeof(a[i].rot)) != 0 ||
            std::memcmp(&a[i].trans, &b[i].trans, sizeof(a[i].trans)) !=
                0) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fault-injection stress scenarios "
                     "(MonoGS base, tracking-health monitor on)");

    data::DatasetSpec spec =
        benchSpec(data::DatasetSpec::tumLike(benchScale()));
    spec.trajectory.frameCount = std::max(benchFrames(), 16u);
    // benchSpec pairs revolutions with ITS frame count; after clamping
    // the count up, restore the same per-frame motion (a slower camera
    // would shrink the teleport displacement the lost-recovery
    // scenario depends on).
    spec.trajectory.revolutions =
        Real(0.006) * static_cast<Real>(spec.trajectory.frameCount);
    data::SyntheticDataset dataset(spec);
    const u32 frames = dataset.frameCount();

    // --- contract checks over clean input: monitor on == monitor off,
    // and relocalizer on (idle while the monitor never reports Lost)
    // == both off.
    bool byte_identical;
    bool reloc_byte_identical;
    {
        slam::SlamSystem off(scenarioConfig(false), dataset.intrinsics());
        slam::SlamSystem on(scenarioConfig(true), dataset.intrinsics());
        slam::SlamConfig reloc_cfg = scenarioConfig(true);
        reloc_cfg.reloc.enabled = true;
        slam::SlamSystem reloc_on(reloc_cfg, dataset.intrinsics());
        for (u32 f = 0; f < frames; ++f) {
            off.processFrame(dataset.frame(f));
            on.processFrame(dataset.frame(f));
            reloc_on.processFrame(dataset.frame(f));
        }
        byte_identical =
            identicalTrajectories(off.trajectory(), on.trajectory());
        reloc_byte_identical = identicalTrajectories(
            off.trajectory(), reloc_on.trajectory());
        std::printf("clean-run byte-identity (monitor on vs off): %s\n",
                    byte_identical ? "IDENTICAL" : "DIVERGED");
        std::printf("clean-run byte-identity (relocalizer on vs off): "
                    "%s\n\n",
                    reloc_byte_identical ? "IDENTICAL" : "DIVERGED");
    }

    // --- the stress schedule per scenario
    struct Scenario
    {
        std::string name;
        data::FaultSchedule schedule;
        slam::SlamConfig cfg;
        StreamMutation mut;
        u32 faultStart = 0; //!< head-alignment window end (0 = off)
        u32 tailStart = 0;  //!< post-fault ATE window start (0 = off)
    };
    std::vector<Scenario> scenarios;

    auto add = [&](const std::string &name,
                   const data::FaultSchedule &schedule,
                   const slam::SlamConfig &cfg,
                   const StreamMutation &mut = {}, u32 fault_start = 0,
                   u32 tail_start = 0) {
        scenarios.push_back(
            {name, schedule, cfg, mut, fault_start, tail_start});
    };

    data::FaultSchedule clean;
    add("clean", clean, scenarioConfig(true));

    data::FaultSchedule drops;
    drops.seed = 31;
    drops.dropProbability = Real(0.25);
    add("dropped_frames", drops, scenarioConfig(true));

    data::FaultSchedule burst;
    burst.dropBurstStart = frames / 3;
    burst.dropBurstLength = 3;
    add("drop_burst", burst, scenarioConfig(true));

    data::FaultSchedule ooo;
    ooo.seed = 32;
    ooo.outOfOrderProbability = Real(0.2);
    ooo.duplicateTimestampProbability = Real(0.1);
    add("out_of_order", ooo, scenarioConfig(true));

    // Seed chosen so the corruption draws spare the bootstrap frames:
    // rejecting frame 0 defers map initialisation, which measures the
    // (known, uninteresting) pre-bootstrap transient instead of the
    // recovery behaviour this scenario is about.
    data::FaultSchedule corrupt;
    corrupt.seed = 52;
    corrupt.corruptionProbability = Real(0.3);
    corrupt.corruptionAreaFraction = Real(0.3);
    corrupt.corruptionNanFraction = Real(0.2);
    add("corruption_burst", corrupt, scenarioConfig(true));

    data::FaultSchedule exposure;
    exposure.seed = 34;
    exposure.exposureShiftProbability = Real(0.5);
    add("exposure_shift", exposure, scenarioConfig(true));

    data::FaultSchedule depth_drop;
    depth_drop.seed = 35;
    depth_drop.depthDropoutProbability = Real(0.4);
    add("depth_dropout", depth_drop, scenarioConfig(true));

    // Lost recovery: a transport stall replays an earlier stream
    // segment, shrouded by a full-frame occluder so the tracker is
    // starved across the jump. The monitor escalates to LOST and the
    // pose coasts forward on the constant-velocity model while the
    // camera actually went BACK into mapped territory — when the
    // shroud lifts, the coasting guess is outside the convergence
    // basin but a keyframe anchor sits right next to the true view.
    // Run twice — relocalizer on vs the coasting baseline — and judge
    // both on the head-anchored post-shroud tail.
    data::FaultSchedule clean_stream; // the mutation IS the fault
    StreamMutation stall;
    stall.teleportAt = frames / 2;
    stall.teleportBack = frames / 2;
    stall.shroudLength = 4;
    const u32 stall_end = stall.teleportAt + stall.shroudLength;
    add("tracking_lost_recovery", clean_stream,
        lostRecoveryConfig(true), stall, stall.teleportAt, stall_end);
    add("tracking_lost_coast", clean_stream, lostRecoveryConfig(false),
        stall, stall.teleportAt, stall_end);

    // Adversarial scene dynamics: a near-field rigid occluder walks
    // across the view while motion blur intermittently smears the
    // frame. The relocalizer stays enabled — attempts against a
    // genuinely occluded view are expected to be REJECTED by the
    // probe-PSNR gate rather than corrupt the trajectory.
    data::FaultSchedule occluder;
    occluder.seed = 36;
    occluder.occluderStart = frames / 3;
    occluder.occluderLength = 3;
    occluder.occluderSizeFraction = Real(0.8);
    occluder.motionBlurProbability = Real(0.25);
    occluder.motionBlurMaxPixels = Real(6);
    // Partially-occluded views still render 13-16 dB against the map,
    // which a lenient probe floor would wave through — and the
    // occluder would be keyframed into the map. The strict floor makes
    // the monitor hold across the transit instead; the relocalizer
    // then reacquires from the first clean view.
    slam::SlamConfig occluder_cfg = lostRecoveryConfig(true);
    occluder_cfg.health.probePsnrMinDb = Real(17);
    add("dynamic_occluder", occluder, occluder_cfg, {},
        occluder.occluderStart,
        occluder.occluderStart + occluder.occluderLength);

    // Queue flood: clean input, but an async depth-1 map queue against
    // a deliberately slow mapper under the drop-oldest policy — the
    // frame loop must never wedge, and every eviction is accounted.
    slam::SlamConfig flood_cfg = scenarioConfig(true);
    flood_cfg.mapQueueDepth = 1;
    flood_cfg.mapOverflowPolicy = slam::OverflowPolicy::DropOldest;
    flood_cfg.kfInterval = 1;
    flood_cfg.tracker.iterations = 2;
    flood_cfg.mapper.iterations = 40;
    add("queue_flood", clean, flood_cfg);

    TablePrinter table({"scenario", "delivered", "rejected", "not-OK",
                        "lost", "reloc att/acc", "recoveries",
                        "ATE RMSE", "post-ATE", "PSNR dB"});
    std::vector<ScenarioOutcome> outcomes;
    for (const Scenario &s : scenarios) {
        ScenarioOutcome out =
            runScenario(s.name, dataset, s.schedule, s.cfg, s.mut,
                        s.faultStart, s.tailStart);
        table.addRow({out.name,
                      std::to_string(out.framesDelivered) + "/" +
                          std::to_string(out.framesSeen),
                      std::to_string(out.rejectedInputs),
                      std::to_string(out.framesNotOk),
                      std::to_string(out.framesLost),
                      std::to_string(out.relocAttempts) + "/" +
                          std::to_string(out.relocAccepted),
                      std::to_string(out.recoveries),
                      TablePrinter::num(out.ateRmse, 4),
                      out.postAteRmse < 0
                          ? std::string("-")
                          : TablePrinter::num(out.postAteRmse, 4),
                      TablePrinter::num(out.psnrDb, 2)});
        outcomes.push_back(std::move(out));
    }
    table.print();

    auto byName = [&](const char *name) -> const ScenarioOutcome * {
        for (const ScenarioOutcome &o : outcomes)
            if (o.name == name)
                return &o;
        return nullptr;
    };
    const ScenarioOutcome *reloc_arm = byName("tracking_lost_recovery");
    const ScenarioOutcome *coast_arm = byName("tracking_lost_coast");

    // Reacquisition bound: the backoff schedule retries within a few
    // frames and the refinement burst converges in one, so a healthy
    // relocalizer reacquires well inside 10 delivered frames.
    const u32 reacquire_bound = 10;
    bool reacquired_within_bound =
        reloc_arm && reloc_arm->wentLost && reloc_arm->reacquired &&
        reloc_arm->reacquireFrames <= reacquire_bound;
    bool post_ate_better =
        reloc_arm && coast_arm && reloc_arm->postAteRmse >= 0 &&
        coast_arm->postAteRmse >= 0 &&
        reloc_arm->postAteRmse < coast_arm->postAteRmse;

    std::printf("\nLost recovery: reloc post-ATE %.4f vs coast %.4f "
                "(%s), reacquired in %u frames (bound %u: %s)\n",
                reloc_arm ? reloc_arm->postAteRmse : -1.0,
                coast_arm ? coast_arm->postAteRmse : -1.0,
                post_ate_better ? "reloc better" : "NOT better",
                reloc_arm ? reloc_arm->reacquireFrames : 0,
                reacquire_bound,
                reacquired_within_bound ? "within" : "EXCEEDED");
    std::printf("Shape check: every faulted stream completes; "
                "rejections and held poses stay bounded; the\n"
                "clean and queue-flood scenarios report zero input "
                "rejections (the flood only sheds map jobs).\n");

    std::string path;
    std::FILE *out = openBenchJson("RTGS_BENCH_JSON_FAULT",
                                   "BENCH_fault_scenarios.json", path);
    if (!out)
        return 1;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"fault_scenarios\",\n"
                 "  \"frames\": %u,\n"
                 "  \"scale\": %.3f,\n"
                 "  \"clean_byte_identical\": %s,\n"
                 "  \"clean_reloc_byte_identical\": %s,\n"
                 "  \"lost_recovery\": {\n"
                 "    \"coast_post_ate_rmse\": %.6f,\n"
                 "    \"reloc_post_ate_rmse\": %.6f,\n"
                 "    \"reloc_post_ate_better\": %s,\n"
                 "    \"reacquire_frames\": %u,\n"
                 "    \"reacquire_bound\": %u,\n"
                 "    \"reacquired_within_bound\": %s\n"
                 "  },\n"
                 "  \"scenarios\": [\n",
                 frames, static_cast<double>(benchScale()),
                 byte_identical ? "true" : "false",
                 reloc_byte_identical ? "true" : "false",
                 coast_arm ? coast_arm->postAteRmse : -1.0,
                 reloc_arm ? reloc_arm->postAteRmse : -1.0,
                 post_ate_better ? "true" : "false",
                 reloc_arm ? reloc_arm->reacquireFrames : 0,
                 reacquire_bound,
                 reacquired_within_bound ? "true" : "false");
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const ScenarioOutcome &o = outcomes[i];
        std::fprintf(
            out,
            "    {\"name\": \"%s\", \"frames_seen\": %zu, "
            "\"frames_delivered\": %zu, \"stream_dropped\": %zu, "
            "\"rejected_inputs\": %zu, \"held_poses\": %zu, "
            "\"frames_not_ok\": %zu, \"recoveries\": %zu, "
            "\"forced_keyframes\": %zu, \"map_jobs_dropped\": %zu, "
            "\"watchdog_trips\": %zu, \"reloc_attempts\": %zu, "
            "\"reloc_accepted\": %zu, \"reloc_candidates\": %zu, "
            "\"frames_lost\": %u, \"occluded_frames\": %zu, "
            "\"blurred_frames\": %zu, \"ate_rmse\": %.6f, "
            "\"psnr_db\": %.3f}%s\n",
            o.name.c_str(), o.framesSeen, o.framesDelivered,
            o.streamDropped, o.rejectedInputs, o.heldPoses,
            o.framesNotOk, o.recoveries, o.forcedKeyframes,
            o.mapJobsDropped, o.watchdogTrips, o.relocAttempts,
            o.relocAccepted, o.relocCandidates, o.framesLost,
            o.occludedFrames, o.blurredFrames, o.ateRmse, o.psnrDb,
            i + 1 == outcomes.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());

    // Hard gate: only the byte-identity contracts fail the bench —
    // scenario metrics are gated by tools/bench_diff.py against the
    // committed baseline instead (float-safe envelopes).
    return byte_identical && reloc_byte_identical ? 0 : 1;
}
