/**
 * @file
 * Fault-injection stress scenarios for the robustness layer: runs the
 * SLAM system with the tracking-health monitor enabled against
 * deterministic fault schedules (dropped frames, transport bursts,
 * out-of-order timestamps, corrupted regions, exposure shifts, depth
 * dropout, and a map-queue flood under the drop-oldest overflow
 * policy) and reports per-scenario ATE RMSE, PSNR, recovery-frame
 * counts, and queue-overflow drop accounting.
 *
 * Also pins the central robustness contract in passing: a clean run
 * with the monitor ON is byte-identical to one with it OFF.
 *
 * Writes BENCH_fault_scenarios.json (override with
 * RTGS_BENCH_JSON_FAULT).
 */

#include "bench_util.hh"

#include <cstring>

#include "data/fault_injector.hh"
#include "slam/pipeline.hh"

namespace
{

using namespace rtgs;

/** Everything one stress scenario reports. */
struct ScenarioOutcome
{
    std::string name;
    size_t framesSeen = 0;
    size_t framesDelivered = 0;
    size_t streamDropped = 0;    //!< frames the schedule dropped
    size_t rejectedInputs = 0;   //!< frames the monitor refused
    size_t heldPoses = 0;        //!< post-track holds (divergence)
    size_t framesNotOk = 0;      //!< frames reported != OK
    size_t recoveries = 0;       //!< completed recovery episodes
    size_t forcedKeyframes = 0;  //!< recovery re-anchors
    size_t mapJobsDropped = 0;   //!< queue-overflow evictions
    size_t watchdogTrips = 0;
    double ateRmse = 0;
    double psnrDb = 0;
};

slam::SlamConfig
scenarioConfig(bool health_on)
{
    slam::SlamConfig cfg =
        slam::SlamConfig::forAlgorithm(slam::BaseAlgorithm::MonoGs);
    cfg.tracker.iterations = 10;
    cfg.mapper.iterations = 12;
    cfg.kfInterval = 4;
    cfg.health.enabled = health_on;
    return cfg;
}

/** Feed the dataset through a fault schedule into a SlamSystem. */
ScenarioOutcome
runScenario(const std::string &name, data::SyntheticDataset &ds,
            const data::FaultSchedule &schedule,
            const slam::SlamConfig &cfg)
{
    slam::SlamSystem sys(cfg, ds.intrinsics());
    data::FaultInjector injector(schedule);

    ScenarioOutcome out;
    out.name = name;
    std::vector<SE3> gt; // aligned with the delivered stream
    u32 mid_delivered = 0;
    for (u32 f = 0; f < ds.frameCount(); ++f) {
        auto frame = injector.process(ds.frame(f));
        if (!frame)
            continue;
        slam::FrameReport report = sys.processFrame(*frame);
        gt.push_back(ds.gtPose(f));
        if (gt.size() == (ds.frameCount() + 1) / 2)
            mid_delivered = f;
        if (report.healthState != slam::HealthState::Ok)
            ++out.framesNotOk;
        if (report.forcedRecoveryKeyframe)
            ++out.forcedKeyframes;
    }
    sys.waitForMapping();

    data::FaultStats stats = injector.stats();
    out.framesSeen = stats.framesSeen;
    out.framesDelivered = stats.framesDelivered;
    out.streamDropped = stats.dropped;
    if (const slam::HealthMonitor *monitor = sys.healthMonitor()) {
        out.rejectedInputs = monitor->rejectedInputs();
        out.heldPoses = monitor->heldPoses();
        out.recoveries = monitor->recoveries();
    }
    out.mapJobsDropped = sys.mapJobsDropped();
    out.watchdogTrips = sys.mapWatchdogTrips();
    out.ateRmse = slam::computeAte(sys.trajectory(), gt).rmse;
    // PSNR against the CLEAN mid frame: the map must explain the true
    // scene even when the input stream was perturbed.
    out.psnrDb = psnr(sys.renderView(ds.gtPose(mid_delivered)),
                      ds.frame(mid_delivered).rgb);
    return out;
}

/** Byte-compare two trajectories. */
bool
identicalTrajectories(const std::vector<SE3> &a,
                      const std::vector<SE3> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].rot, &b[i].rot, sizeof(a[i].rot)) != 0 ||
            std::memcmp(&a[i].trans, &b[i].trans, sizeof(a[i].trans)) !=
                0) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fault-injection stress scenarios "
                     "(MonoGS base, tracking-health monitor on)");

    data::DatasetSpec spec =
        benchSpec(data::DatasetSpec::tumLike(benchScale()));
    spec.trajectory.frameCount = std::max(benchFrames(), 16u);
    data::SyntheticDataset dataset(spec);
    const u32 frames = dataset.frameCount();

    // --- contract check: monitor on == monitor off over clean input
    bool byte_identical;
    {
        slam::SlamSystem off(scenarioConfig(false), dataset.intrinsics());
        slam::SlamSystem on(scenarioConfig(true), dataset.intrinsics());
        for (u32 f = 0; f < frames; ++f) {
            off.processFrame(dataset.frame(f));
            on.processFrame(dataset.frame(f));
        }
        byte_identical =
            identicalTrajectories(off.trajectory(), on.trajectory());
        std::printf("clean-run byte-identity (monitor on vs off): %s\n\n",
                    byte_identical ? "IDENTICAL" : "DIVERGED");
    }

    // --- the stress schedule per scenario
    struct Scenario
    {
        std::string name;
        data::FaultSchedule schedule;
        slam::SlamConfig cfg;
    };
    std::vector<Scenario> scenarios;

    auto add = [&](const std::string &name,
                   const data::FaultSchedule &schedule,
                   const slam::SlamConfig &cfg) {
        scenarios.push_back({name, schedule, cfg});
    };

    data::FaultSchedule clean;
    add("clean", clean, scenarioConfig(true));

    data::FaultSchedule drops;
    drops.seed = 31;
    drops.dropProbability = Real(0.25);
    add("dropped_frames", drops, scenarioConfig(true));

    data::FaultSchedule burst;
    burst.dropBurstStart = frames / 3;
    burst.dropBurstLength = 3;
    add("drop_burst", burst, scenarioConfig(true));

    data::FaultSchedule ooo;
    ooo.seed = 32;
    ooo.outOfOrderProbability = Real(0.2);
    ooo.duplicateTimestampProbability = Real(0.1);
    add("out_of_order", ooo, scenarioConfig(true));

    // Seed chosen so the corruption draws spare the bootstrap frames:
    // rejecting frame 0 defers map initialisation, which measures the
    // (known, uninteresting) pre-bootstrap transient instead of the
    // recovery behaviour this scenario is about.
    data::FaultSchedule corrupt;
    corrupt.seed = 52;
    corrupt.corruptionProbability = Real(0.3);
    corrupt.corruptionAreaFraction = Real(0.3);
    corrupt.corruptionNanFraction = Real(0.2);
    add("corruption_burst", corrupt, scenarioConfig(true));

    data::FaultSchedule exposure;
    exposure.seed = 34;
    exposure.exposureShiftProbability = Real(0.5);
    add("exposure_shift", exposure, scenarioConfig(true));

    data::FaultSchedule depth_drop;
    depth_drop.seed = 35;
    depth_drop.depthDropoutProbability = Real(0.4);
    add("depth_dropout", depth_drop, scenarioConfig(true));

    // Queue flood: clean input, but an async depth-1 map queue against
    // a deliberately slow mapper under the drop-oldest policy — the
    // frame loop must never wedge, and every eviction is accounted.
    slam::SlamConfig flood_cfg = scenarioConfig(true);
    flood_cfg.mapQueueDepth = 1;
    flood_cfg.mapOverflowPolicy = slam::OverflowPolicy::DropOldest;
    flood_cfg.kfInterval = 1;
    flood_cfg.tracker.iterations = 2;
    flood_cfg.mapper.iterations = 40;
    add("queue_flood", clean, flood_cfg);

    TablePrinter table({"scenario", "delivered", "rejected", "not-OK",
                        "recoveries", "map-drops", "ATE RMSE",
                        "PSNR dB"});
    std::vector<ScenarioOutcome> outcomes;
    for (const Scenario &s : scenarios) {
        ScenarioOutcome out =
            runScenario(s.name, dataset, s.schedule, s.cfg);
        table.addRow({out.name,
                      std::to_string(out.framesDelivered) + "/" +
                          std::to_string(out.framesSeen),
                      std::to_string(out.rejectedInputs),
                      std::to_string(out.framesNotOk),
                      std::to_string(out.recoveries),
                      std::to_string(out.mapJobsDropped),
                      TablePrinter::num(out.ateRmse, 4),
                      TablePrinter::num(out.psnrDb, 2)});
        outcomes.push_back(std::move(out));
    }
    table.print();

    std::printf("\nShape check: every faulted stream completes; "
                "rejections and held poses stay bounded; the\n"
                "clean and queue-flood scenarios report zero input "
                "rejections (the flood only sheds map jobs).\n");

    std::string path;
    std::FILE *out = openBenchJson("RTGS_BENCH_JSON_FAULT",
                                   "BENCH_fault_scenarios.json", path);
    if (!out)
        return 1;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"fault_scenarios\",\n"
                 "  \"frames\": %u,\n"
                 "  \"scale\": %.3f,\n"
                 "  \"clean_byte_identical\": %s,\n"
                 "  \"scenarios\": [\n",
                 frames, static_cast<double>(benchScale()),
                 byte_identical ? "true" : "false");
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const ScenarioOutcome &o = outcomes[i];
        std::fprintf(
            out,
            "    {\"name\": \"%s\", \"frames_seen\": %zu, "
            "\"frames_delivered\": %zu, \"stream_dropped\": %zu, "
            "\"rejected_inputs\": %zu, \"held_poses\": %zu, "
            "\"frames_not_ok\": %zu, \"recoveries\": %zu, "
            "\"forced_keyframes\": %zu, \"map_jobs_dropped\": %zu, "
            "\"watchdog_trips\": %zu, \"ate_rmse\": %.6f, "
            "\"psnr_db\": %.3f}%s\n",
            o.name.c_str(), o.framesSeen, o.framesDelivered,
            o.streamDropped, o.rejectedInputs, o.heldPoses,
            o.framesNotOk, o.recoveries, o.forcedKeyframes,
            o.mapJobsDropped, o.watchdogTrips, o.ateRmse, o.psnrDb,
            i + 1 == outcomes.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
