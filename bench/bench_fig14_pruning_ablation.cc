/**
 * @file
 * Regenerates Fig. 14: (a) final ATE and per-frame latency as a
 * function of the Gaussian pruning ratio, and (b) the forward (FF) /
 * backward (BP) speedups contributed by adaptive pruning and dynamic
 * downsampling separately.
 *
 * Expected shape: latency falls with ratio while ATE is stable until
 * ~50% and then degrades sharply; pruning gives ~1.5x/1.7x FF/BP and
 * downsampling ~2x on both (paper: 1.53x/1.7x and 2.1x/1.9x).
 */

#include "bench_util.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 14: pruning-ratio ablation and FF/BP "
                     "speedups (MonoGS-like, Replica-like)");

    data::DatasetSpec spec =
        benchSpec(data::DatasetSpec::replicaLike(benchScale()));
    hw::SystemModel model = benchSystemModel(hw::GpuSpec::onx());

    // ---- (a) pruning ratio sweep --------------------------------------
    TablePrinter sweep({"prune ratio", "final ATE (cm)",
                        "latency/frame (ms)"});
    sweep.setTitle("(a) impact of the Gaussian pruning ratio");
    for (double ratio : {0.0, 0.2, 0.4, 0.5, 0.6, 0.8}) {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enableDownsampling = false;
        cfg.enablePruning = ratio > 0;
        cfg.pruner.maxPruneRatio = static_cast<Real>(ratio);
        if (ratio > 0.5)
            cfg.pruner.maskFractionPerInterval = 0.4f;
        RunOutcome run = runSequence(ds, cfg);
        auto rep = model.sequenceReport(run.traces,
                                        hw::SystemKind::GpuBaseline);
        sweep.addRow({TablePrinter::num(ratio * 100, 0) + "%",
                      TablePrinter::num(run.ateRmse * 100),
                      TablePrinter::num(rep.totalSeconds /
                                        rep.frames * 1e3, 1)});
    }
    sweep.print();

    // ---- (b) FF/BP speedup decomposition ------------------------------
    auto measure = [&](bool prune, bool down) {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enablePruning = prune;
        cfg.enableDownsampling = down;
        RunOutcome run = runSequence(ds, cfg);
        // Split each tracking iteration into FF and BP shares using the
        // GPU model.
        double ff = 0, bp = 0;
        for (const auto &ft : run.traces) {
            if (ft.trackIterations == 0)
                continue;
            auto t = model.gpuModel().iterationTime(ft.tracking);
            ff += (t.preprocess + t.sort + t.render) *
                  ft.trackIterations;
            bp += (t.renderBp + t.preprocessBp) * ft.trackIterations;
        }
        return std::make_pair(ff, bp);
    };

    auto [ff_base, bp_base] = measure(false, false);
    auto [ff_prune, bp_prune] = measure(true, false);
    auto [ff_down, bp_down] = measure(false, true);

    TablePrinter decomposition({"technique", "FF speedup", "BP speedup"});
    decomposition.setTitle("\n(b) per-technique FF/BP speedups "
                           "(tracking stages)");
    decomposition.addRow({"Adaptive pruning",
                          TablePrinter::num(ff_base / ff_prune) + "x",
                          TablePrinter::num(bp_base / bp_prune) + "x"});
    decomposition.addRow({"Dynamic downsampling",
                          TablePrinter::num(ff_base / ff_down) + "x",
                          TablePrinter::num(bp_base / bp_down) + "x"});
    decomposition.print();

    std::printf("\nShape check vs paper Fig. 14: ATE stable to ~50%% "
                "then degrades; paper reports\npruning 1.53x/1.7x and "
                "downsampling 2.1x/1.9x FF/BP speedups.\n");
    return 0;
}
