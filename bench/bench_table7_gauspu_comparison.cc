/**
 * @file
 * Regenerates Table 7: SplaTAM on the RTX 3090 — plain, with the
 * GauSPU plug-in (comparator model), and with the RTGS *algorithm*
 * techniques alone (the paper's point: RTGS reaches GauSPU-class
 * tracking FPS without custom hardware on a desktop GPU).
 */

#include "bench_util.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Table 7: comparison with GauSPU "
                     "(SplaTAM-like on RTX 3090 model)");

    data::DatasetSpec spec =
        benchSpec(data::DatasetSpec::replicaLike(benchScale()));
    hw::SystemModel model = benchSystemModel(hw::GpuSpec::rtx3090());

    TablePrinter table({"Method", "ATE (cm)", "PSNR (dB)", "Track FPS",
                        "Overall FPS", "Peak Mem (MB)"});

    // Row 1: plain SplaTAM on the GPU.
    data::SyntheticDataset ds1(spec);
    core::RtgsSlamConfig base_cfg =
        benchConfig(slam::BaseAlgorithm::SplaTam);
    base_cfg.enablePruning = false;
    base_cfg.enableDownsampling = false;
    RunOutcome base = runSequence(ds1, base_cfg);
    auto base_rep = model.sequenceReport(base.traces,
                                         hw::SystemKind::GpuBaseline);
    table.addRow({"SplaTAM", TablePrinter::num(base.ateRmse * 100),
                  TablePrinter::num(base.psnrDb, 1),
                  TablePrinter::num(base_rep.trackingFps(), 1),
                  TablePrinter::num(base_rep.fps(), 1),
                  TablePrinter::num(runtimeMemoryMb(base.peakBytes), 2)});

    // Row 2: GauSPU plug-in on the same (unpruned) workload.
    auto gauspu_rep = model.sequenceReport(base.traces,
                                           hw::SystemKind::GauSpu);
    table.addRow({"GauSPU+SplaTAM",
                  TablePrinter::num(base.ateRmse * 100 * 0.95),
                  TablePrinter::num(base.psnrDb, 1),
                  TablePrinter::num(gauspu_rep.trackingFps(), 1),
                  TablePrinter::num(gauspu_rep.fps(), 1),
                  TablePrinter::num(runtimeMemoryMb(base.peakBytes) * 0.6,
                                    2)});

    // Row 3: RTGS algorithm techniques only, still on the plain GPU.
    data::SyntheticDataset ds2(spec);
    core::RtgsSlamConfig ours_cfg =
        benchConfig(slam::BaseAlgorithm::SplaTam);
    RunOutcome ours = runSequence(ds2, ours_cfg);
    auto ours_rep = model.sequenceReport(ours.traces,
                                         hw::SystemKind::GpuBaseline);
    table.addRow({"Ours+SplaTAM", TablePrinter::num(ours.ateRmse * 100),
                  TablePrinter::num(ours.psnrDb, 1),
                  TablePrinter::num(ours_rep.trackingFps(), 1),
                  TablePrinter::num(ours_rep.fps(), 1),
                  TablePrinter::num(runtimeMemoryMb(ours.peakBytes), 2)});
    table.print();

    std::printf("\nShape check vs paper Table 7: Ours+SplaTAM beats "
                "GauSPU+SplaTAM in tracking FPS\npurely algorithmically "
                "(22.6 vs 14.6 in the paper) with lower peak memory.\n");
    return 0;
}
