/**
 * @file
 * Regenerates Fig. 17: (a) the workload-imbalance ablation (fixed
 * mapping vs subtile streaming vs + pixel pairing vs ideal), and
 * (b) the cumulative speedup breakdown of all RTGS techniques on one
 * TUM-like MonoGS workload: phase pipelining, GMU, R&B buffer, WSU,
 * adaptive pruning and dynamic downsampling.
 *
 * Expected shape (paper): streaming + pairing approach the ideal
 * balance (33% imbalance reduction); cumulative factors ~2.49x
 * (pipeline), 1.87x (GMU), 1.6x (R&B), 1.58x (WSU), then the
 * algorithm techniques on top.
 */

#include "bench_util.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 17: workload-imbalance and speedup "
                     "breakdown (MonoGS-like, TUM-like)");

    data::DatasetSpec spec =
        benchSpec(data::DatasetSpec::tumLike(benchScale()));

    // Base workload (no algorithm techniques) and enhanced workload.
    data::SyntheticDataset ds_base(spec);
    core::RtgsSlamConfig base_cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
    base_cfg.enablePruning = false;
    base_cfg.enableDownsampling = false;
    RunOutcome base = runSequence(ds_base, base_cfg);

    data::SyntheticDataset ds_prune(spec);
    core::RtgsSlamConfig prune_cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
    prune_cfg.enableDownsampling = false;
    RunOutcome pruned = runSequence(ds_prune, prune_cfg);

    data::SyntheticDataset ds_full(spec);
    RunOutcome full = runSequence(ds_full,
                                  benchConfig(slam::BaseAlgorithm::MonoGs));

    // Pick a representative tracking trace.
    const hw::IterationTrace *trace = nullptr;
    for (const auto &ft : base.traces)
        if (ft.trackIterations > 0)
            trace = &ft.tracking;
    rtgs_assert(trace != nullptr);

    // ---- (a) workload-imbalance ablation ------------------------------
    hw::RtgsAccelModel plugin;
    TablePrinter imb({"configuration", "RE idle fraction",
                      "speedup vs unbalanced"});
    imb.setTitle("(a) workload imbalance mitigation");

    auto time_of = [&](hw::RtgsFeatures f) {
        return plugin.iterationTime(*trace, true, f).total;
    };
    hw::RtgsFeatures none = hw::RtgsFeatures::none();
    none.rbBuffer = true; // isolate scheduling effects
    none.gmu = true;
    none.pipelined = true;
    hw::RtgsFeatures stream = none;
    stream.streaming = true;
    hw::RtgsFeatures both = stream;
    both.wsuPairing = true;

    double t_none = time_of(none);
    auto row = [&](const char *name, hw::RtgsFeatures f) {
        imb.addRow({name,
                    TablePrinter::num(plugin.imbalance(*trace, f) * 100,
                                      1) + "%",
                    TablePrinter::num(t_none / time_of(f), 2) + "x"});
    };
    row("fixed mapping (original)", none);
    row("+ subtile streaming", stream);
    row("+ pixel pairwise scheduling", both);
    // Ideal: perfectly balanced work.
    {
        auto subtiles = trace->allSubtiles();
        double work = 0;
        for (const auto *s : subtiles)
            work += plugin.subtileCycles(*s, both);
        double ideal_cycles = work / plugin.config().reCount;
        double ideal_s = ideal_cycles / (plugin.config().clockGhz * 1e9);
        // Add the non-RE phases for a comparable total.
        auto t_both = plugin.iterationTime(*trace, true, both);
        double ideal_total = ideal_s +
                             (t_both.total - t_both.render -
                              t_both.renderBp);
        imb.addRow({"ideal balance", "0.0%",
                    TablePrinter::num(t_none / ideal_total, 2) + "x"});
    }
    imb.print();

    // ---- (b) cumulative technique speedups ----------------------------
    hw::SystemModel model = benchSystemModel(hw::GpuSpec::onx());

    TablePrinter cum({"configuration", "FPS", "step speedup",
                      "cumulative"});
    cum.setTitle("\n(b) cumulative speedup breakdown");

    double prev_fps = 0, first_fps = 0;
    auto add = [&](const char *name,
                   const std::vector<hw::FrameTrace> &traces,
                   hw::SystemKind kind, hw::RtgsFeatures f) {
        double fps = model.sequenceReport(traces, kind, f).fps();
        if (first_fps == 0) {
            first_fps = fps;
            cum.addRow({name, TablePrinter::num(fps, 1), "-", "1.0x"});
        } else {
            cum.addRow({name, TablePrinter::num(fps, 1),
                        TablePrinter::num(fps / prev_fps, 2) + "x",
                        TablePrinter::num(fps / first_fps, 2) + "x"});
        }
        prev_fps = fps;
    };

    hw::RtgsFeatures f0 = hw::RtgsFeatures::none();
    add("GPU baseline", base.traces, hw::SystemKind::GpuBaseline, f0);
    hw::RtgsFeatures f1 = f0;
    f1.pipelined = true;
    add("+ RE/PE pipelining", base.traces, hw::SystemKind::RtgsFull, f1);
    hw::RtgsFeatures f2 = f1;
    f2.gmu = true;
    add("+ GMU", base.traces, hw::SystemKind::RtgsFull, f2);
    hw::RtgsFeatures f3 = f2;
    f3.rbBuffer = true;
    add("+ R&B buffer", base.traces, hw::SystemKind::RtgsFull, f3);
    hw::RtgsFeatures f4 = f3;
    f4.wsuPairing = true;
    f4.streaming = true;
    add("+ WSU", base.traces, hw::SystemKind::RtgsFull, f4);
    add("+ adaptive pruning", pruned.traces, hw::SystemKind::RtgsFull,
        f4);
    add("+ dynamic downsampling", full.traces, hw::SystemKind::RtgsFull,
        f4);
    cum.print();

    std::printf("\nShape check vs paper Fig. 17: streaming+pairing "
                "approach the ideal balance;\npaper's cumulative factors "
                "are pipeline 2.49x, GMU 1.87x, R&B 1.6x, WSU 1.58x,\n"
                "then pruning and 2.6x downsampling on top.\n");
    return 0;
}
