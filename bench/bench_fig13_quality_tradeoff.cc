/**
 * @file
 * Regenerates Fig. 13: (a) the accuracy/efficiency trade-off of the
 * RTGS pruning against the more precise LightGaussian/FlashGS scoring
 * (which pay extra scoring passes), and (b) cumulative drift over the
 * sequence for increasing pruning ratios.
 *
 * Expected shape: RTGS reaches higher FPS at comparable ATE because
 * its scoring is free; drift stays near-baseline up to ~50% pruning
 * and degrades sharply at 80%.
 */

#include "bench_util.hh"
#include "core/baselines.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 13: quality/efficiency trade-off "
                     "(MonoGS-like, Replica-like)");

    data::DatasetSpec spec =
        benchSpec(data::DatasetSpec::replicaLike(benchScale()));
    hw::SystemModel model = benchSystemModel(hw::GpuSpec::onx());

    // ---- (a) method comparison at 50% pruning ------------------------
    TablePrinter method_table({"Method", "final ATE (cm)", "FPS",
                               "extra scoring passes/frame"});
    method_table.setTitle("(a) pruning-method trade-off (50% ratio)");

    struct MethodResult
    {
        std::string name;
        double ate, fps;
        u32 extra;
    };
    std::vector<MethodResult> results;

    // Baseline: no pruning.
    {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enablePruning = false;
        cfg.enableDownsampling = false;
        RunOutcome run = runSequence(ds, cfg);
        auto rep = model.sequenceReport(run.traces,
                                        hw::SystemKind::GpuBaseline);
        results.push_back({"Baseline (no prune)", run.ateRmse * 100,
                           rep.fps(), 0});
    }
    // RTGS adaptive pruning (gradient reuse: zero extra passes).
    {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enableDownsampling = false;
        cfg.pruner.maxPruneRatio = 0.5f;
        RunOutcome run = runSequence(ds, cfg);
        auto rep = model.sequenceReport(run.traces,
                                        hw::SystemKind::GpuBaseline);
        results.push_back({"RTGS Algo.", run.ateRmse * 100, rep.fps(),
                           0});
    }
    // LightGaussian / FlashGS: same structural pruning benefit class,
    // but each frame pays their scoring passes.
    for (int which = 0; which < 2; ++which) {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enableDownsampling = false;
        cfg.pruner.maxPruneRatio = 0.5f;
        RunOutcome run = runSequence(ds, cfg);
        u32 extra = which == 0 ? 1 : 2; // scoring passes per frame
        for (auto &ft : run.traces)
            ft.extraScoringPasses = extra;
        auto rep = model.sequenceReport(run.traces,
                                        hw::SystemKind::GpuBaseline);
        // Their multi-metric scores retain slightly more conservative
        // sets; model the quality as baseline-grade.
        results.push_back({which == 0 ? "LightGaussian" : "FlashGS",
                           results[0].ate * 0.98, rep.fps(), extra});
    }

    for (const auto &r : results) {
        method_table.addRow({r.name, TablePrinter::num(r.ate),
                             TablePrinter::num(r.fps, 2),
                             std::to_string(r.extra)});
    }
    method_table.print();

    // ---- (b) drift accumulation vs pruning ratio ---------------------
    TablePrinter drift_table({"prune ratio", "1/4 seq", "2/4 seq",
                              "3/4 seq", "final ATE (cm)"});
    drift_table.setTitle("\n(b) cumulative ATE drift vs pruning ratio");

    for (double ratio : {0.0, 0.25, 0.5, 0.8}) {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enableDownsampling = false;
        cfg.enablePruning = ratio > 0;
        cfg.pruner.maxPruneRatio = static_cast<Real>(ratio);
        if (ratio >= 0.8) {
            // The aggressive setting also masks faster (the regime the
            // paper shows collapsing).
            cfg.pruner.maskFractionPerInterval = 0.4f;
        }
        RunOutcome run = runSequence(ds, cfg);
        auto cum = slam::cumulativeAte(run.trajectory, run.gt);
        size_t n = cum.size();
        drift_table.addRow(
            {TablePrinter::num(ratio * 100, 0) + "%",
             TablePrinter::num(cum[n / 4] * 100),
             TablePrinter::num(cum[n / 2] * 100),
             TablePrinter::num(cum[3 * n / 4] * 100),
             TablePrinter::num(cum[n - 1] * 100)});
    }
    drift_table.print();

    std::printf("\nShape check vs paper Fig. 13: RTGS matches baseline "
                "ATE at higher FPS than the\nprecise pruners; drift "
                "stays controlled to ~50%% pruning and blows up at "
                "80%%.\n");
    return 0;
}
