/**
 * @file
 * Regenerates Fig. 13: (a) the accuracy/efficiency trade-off of the
 * RTGS pruning against the more precise LightGaussian/FlashGS scoring
 * (which pay extra scoring passes), (b) cumulative drift over the
 * sequence for increasing pruning ratios, and (c) the
 * approximate-computing ladder ablation (pipeline presets precise /
 * fast / fastest_approx; see docs/APPROXIMATION.md) with per-rung
 * wall-clock, PSNR and ATE written to
 * BENCH_fig13_quality_tradeoff.json (override with RTGS_FIG13_JSON).
 *
 * Expected shape: RTGS reaches higher FPS at comparable ATE because
 * its scoring is free; drift stays near-baseline up to ~50% pruning
 * and degrades sharply at 80%. The ladder's precise rung must be
 * byte-identical to the default pipeline, and fastest_approx may cost
 * at most 0.3 dB PSNR (gates enforced via the exit code).
 */

#include <cstring>

#include "bench_util.hh"
#include "common/cpu_features.hh"
#include "core/baselines.hh"
#include "gs/pipeline_config.hh"
#include "gs/row_kernels.hh"

namespace
{

/** Bitwise trajectory compare (determinism currency of this repo). */
bool
identicalTrajectories(const std::vector<rtgs::SE3> &a,
                      const std::vector<rtgs::SE3> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i].rot, &b[i].rot, sizeof(a[i].rot)) != 0 ||
            std::memcmp(&a[i].trans, &b[i].trans,
                        sizeof(a[i].trans)) != 0) {
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 13: quality/efficiency trade-off "
                     "(MonoGS-like, Replica-like)");

    data::DatasetSpec spec =
        benchSpec(data::DatasetSpec::replicaLike(benchScale()));
    hw::SystemModel model = benchSystemModel(hw::GpuSpec::onx());

    // ---- (a) method comparison at 50% pruning ------------------------
    TablePrinter method_table({"Method", "final ATE (cm)", "FPS",
                               "extra scoring passes/frame"});
    method_table.setTitle("(a) pruning-method trade-off (50% ratio)");

    struct MethodResult
    {
        std::string name;
        double ate, fps;
        u32 extra;
    };
    std::vector<MethodResult> results;

    // Baseline: no pruning.
    {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enablePruning = false;
        cfg.enableDownsampling = false;
        RunOutcome run = runSequence(ds, cfg);
        auto rep = model.sequenceReport(run.traces,
                                        hw::SystemKind::GpuBaseline);
        results.push_back({"Baseline (no prune)", run.ateRmse * 100,
                           rep.fps(), 0});
    }
    // RTGS adaptive pruning (gradient reuse: zero extra passes).
    {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enableDownsampling = false;
        cfg.pruner.maxPruneRatio = 0.5f;
        RunOutcome run = runSequence(ds, cfg);
        auto rep = model.sequenceReport(run.traces,
                                        hw::SystemKind::GpuBaseline);
        results.push_back({"RTGS Algo.", run.ateRmse * 100, rep.fps(),
                           0});
    }
    // LightGaussian / FlashGS: same structural pruning benefit class,
    // but each frame pays their scoring passes.
    for (int which = 0; which < 2; ++which) {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enableDownsampling = false;
        cfg.pruner.maxPruneRatio = 0.5f;
        RunOutcome run = runSequence(ds, cfg);
        u32 extra = which == 0 ? 1 : 2; // scoring passes per frame
        for (auto &ft : run.traces)
            ft.extraScoringPasses = extra;
        auto rep = model.sequenceReport(run.traces,
                                        hw::SystemKind::GpuBaseline);
        // Their multi-metric scores retain slightly more conservative
        // sets; model the quality as baseline-grade.
        results.push_back({which == 0 ? "LightGaussian" : "FlashGS",
                           results[0].ate * 0.98, rep.fps(), extra});
    }

    for (const auto &r : results) {
        method_table.addRow({r.name, TablePrinter::num(r.ate),
                             TablePrinter::num(r.fps, 2),
                             std::to_string(r.extra)});
    }
    method_table.print();

    // ---- (b) drift accumulation vs pruning ratio ---------------------
    TablePrinter drift_table({"prune ratio", "1/4 seq", "2/4 seq",
                              "3/4 seq", "final ATE (cm)"});
    drift_table.setTitle("\n(b) cumulative ATE drift vs pruning ratio");

    for (double ratio : {0.0, 0.25, 0.5, 0.8}) {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enableDownsampling = false;
        cfg.enablePruning = ratio > 0;
        cfg.pruner.maxPruneRatio = static_cast<Real>(ratio);
        if (ratio >= 0.8) {
            // The aggressive setting also masks faster (the regime the
            // paper shows collapsing).
            cfg.pruner.maskFractionPerInterval = 0.4f;
        }
        RunOutcome run = runSequence(ds, cfg);
        auto cum = slam::cumulativeAte(run.trajectory, run.gt);
        size_t n = cum.size();
        drift_table.addRow(
            {TablePrinter::num(ratio * 100, 0) + "%",
             TablePrinter::num(cum[n / 4] * 100),
             TablePrinter::num(cum[n / 2] * 100),
             TablePrinter::num(cum[3 * n / 4] * 100),
             TablePrinter::num(cum[n - 1] * 100)});
    }
    drift_table.print();

    // ---- (c) approximation-ladder rung ablation ----------------------
    // Same MonoGS-like sequence per rung; only the pipeline preset
    // changes. Wall-clock is the real end-to-end SLAM time at this
    // bench scale; PSNR/ATE quantify the quality cost of each rung.
    TablePrinter ladder_table({"preset", "wall (s)", "PSNR (dB)",
                               "final ATE (cm)", "kernels"});
    ladder_table.setTitle("\n(c) approximation ladder "
                          "(precise / fast / fastest_approx)");

    struct RungResult
    {
        const char *name;
        double wall, psnr, ate;
        std::vector<SE3> trajectory;
    };
    std::vector<RungResult> rungs;
    const gs::PipelinePreset presets[] = {
        gs::PipelinePreset::Precise, gs::PipelinePreset::Fast,
        gs::PipelinePreset::FastestApprox};
    for (gs::PipelinePreset preset : presets) {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enableDownsampling = false;
        cfg.pruner.maxPruneRatio = 0.5f;
        cfg.base.pipeline.preset = preset;
        RunOutcome run = runSequence(ds, cfg);
        rungs.push_back({gs::pipelinePresetName(preset),
                         run.wallSeconds, run.psnrDb, run.ateRmse * 100,
                         std::move(run.trajectory)});
    }
    // Byte-identity gate: the default pipeline (preset untouched) must
    // reproduce the precise rung bit-for-bit — the plumbing itself may
    // not perturb a single float.
    bool precise_identical;
    {
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enableDownsampling = false;
        cfg.pruner.maxPruneRatio = 0.5f;
        RunOutcome run = runSequence(ds, cfg);
        precise_identical =
            identicalTrajectories(run.trajectory, rungs[0].trajectory);
    }
    for (size_t i = 0; i < rungs.size(); ++i) {
        const gs::RowKernels &kern = gs::selectRowKernels(
            presets[i], activeSimdLevel());
        ladder_table.addRow({rungs[i].name,
                             TablePrinter::num(rungs[i].wall, 3),
                             TablePrinter::num(rungs[i].psnr, 2),
                             TablePrinter::num(rungs[i].ate),
                             kern.name});
    }
    ladder_table.print();
    double psnr_drop = rungs[0].psnr - rungs[2].psnr;
    std::printf("\nprecise byte-identical to default pipeline: %s; "
                "fastest_approx PSNR drop %.3f dB (gate <= 0.3)\n",
                precise_identical ? "yes" : "NO", psnr_drop);

    std::string json_path;
    if (std::FILE *out = openBenchJson(
            "RTGS_FIG13_JSON", "BENCH_fig13_quality_tradeoff.json",
            json_path)) {
        std::fprintf(out,
                     "{\n"
                     "  \"bench\": \"fig13_quality_tradeoff\",\n"
                     "  \"scale\": %.3f,\n"
                     "  \"frames\": %u,\n"
                     "  \"simd_level\": \"%s\",\n"
                     "  \"precise_byte_identical\": %s,\n"
                     "  \"fastest_approx_psnr_drop_db\": %.4f,\n"
                     "  \"rungs\": [\n",
                     static_cast<double>(benchScale()), benchFrames(),
                     simdLevelName(activeSimdLevel()),
                     precise_identical ? "true" : "false", psnr_drop);
        for (size_t i = 0; i < rungs.size(); ++i) {
            std::fprintf(
                out,
                "    {\"preset\": \"%s\", \"wall_s\": %.4f, "
                "\"psnr_db\": %.4f, \"ate_cm\": %.4f}%s\n",
                rungs[i].name, rungs[i].wall, rungs[i].psnr,
                rungs[i].ate, i + 1 < rungs.size() ? "," : "");
        }
        std::fprintf(out, "  ]\n}\n");
        std::fclose(out);
        std::printf("wrote %s\n", json_path.c_str());
    }

    std::printf("\nShape check vs paper Fig. 13: RTGS matches baseline "
                "ATE at higher FPS than the\nprecise pruners; drift "
                "stays controlled to ~50%% pruning and blows up at "
                "80%%.\n");
    if (!precise_identical) {
        std::fprintf(stderr, "FAIL: precise rung not byte-identical to "
                             "the default pipeline\n");
        return 1;
    }
    if (psnr_drop > 0.3) {
        std::fprintf(stderr,
                     "FAIL: fastest_approx PSNR drop %.3f dB exceeds "
                     "0.3 dB\n", psnr_drop);
        return 1;
    }
    return 0;
}
