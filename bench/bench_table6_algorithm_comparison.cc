/**
 * @file
 * Regenerates Table 6: {base, Taming-3DGS-pruned, RTGS-enhanced}
 * variants of the three keyframe-based algorithms across the four
 * dataset presets — ATE, PSNR, modelled FPS (edge GPU), and peak
 * memory.
 *
 * Expected shape (paper): "Ours+X" achieves 2.5-3.6x FPS over base
 * with <5%-class quality change; Taming prunes but degrades accuracy
 * noticeably because its gradient-trend scoring cannot warm up inside
 * SLAM's iteration budget.
 */

#include "bench_util.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Table 6: algorithm comparison across datasets");

    hw::SystemModel model = benchSystemModel(hw::GpuSpec::onx());
    const slam::BaseAlgorithm algos[] = {slam::BaseAlgorithm::GsSlam,
                                         slam::BaseAlgorithm::MonoGs,
                                         slam::BaseAlgorithm::PhotoSlam};

    for (auto spec_base : data::DatasetSpec::allPresets(benchScale())) {
        data::DatasetSpec spec = benchSpec(spec_base);
        TablePrinter table({"Method", "ATE (cm)", "PSNR (dB)", "FPS",
                            "Mem (MB)"});
        table.setTitle("Dataset: " + spec.name);

        for (auto algo : algos) {
            struct Variant
            {
                std::string label;
                bool prune, down;
                core::PruneMethod method;
            };
            const Variant variants[] = {
                {std::string(slam::algorithmName(algo)), false, false,
                 core::PruneMethod::None},
                {"Taming+" + std::string(slam::algorithmName(algo)),
                 true, false, core::PruneMethod::Taming},
                {"Ours+" + std::string(slam::algorithmName(algo)), true,
                 true, core::PruneMethod::Rtgs},
            };

            for (const auto &v : variants) {
                data::SyntheticDataset dataset(spec);
                core::RtgsSlamConfig cfg = benchConfig(algo);
                cfg.enablePruning = v.prune;
                cfg.enableDownsampling = v.down;
                cfg.pruneMethod = v.method;
                RunOutcome run = runSequence(dataset, cfg);
                auto rep = model.sequenceReport(
                    run.traces, v.method == core::PruneMethod::Rtgs
                                    ? hw::SystemKind::GpuBaseline
                                    : hw::SystemKind::GpuBaseline);
                table.addRow({v.label,
                              TablePrinter::num(run.ateRmse * 100),
                              TablePrinter::num(run.psnrDb, 1),
                              TablePrinter::num(rep.fps(), 2),
                              TablePrinter::num(
                                  runtimeMemoryMb(run.peakBytes), 2)});
            }
        }
        table.print();
        std::printf("\n");
    }
    std::printf("Shape check vs paper Table 6: Ours rows show higher FPS "
                "and lower memory than base\nwith small ATE/PSNR change; "
                "Taming rows degrade accuracy more for less gain.\n");
    return 0;
}
