/**
 * @file
 * Shared machinery for the benchmark harnesses: sequence runners that
 * collect hardware workload traces while SLAM executes, evaluation
 * helpers, and environment knobs.
 *
 * Every bench binary regenerates one of the paper's tables or figures.
 * Scaling: datasets default to RTGS_BENCH_SCALE (linear, default 0.15)
 * of the native resolutions and RTGS_BENCH_FRAMES frames (default 12);
 * the hardware models interpret traces at the native workload through
 * workloadScale = scale^2 (see EXPERIMENTS.md).
 */

#ifndef RTGS_BENCH_BENCH_UTIL_HH
#define RTGS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/rtgs_slam.hh"
#include "hw/system_model.hh"
#include "image/metrics.hh"
#include "slam/evaluation.hh"

namespace rtgs::bench
{

/** Linear dataset scale for bench runs (env RTGS_BENCH_SCALE). */
inline Real
benchScale()
{
    if (const char *s = std::getenv("RTGS_BENCH_SCALE"))
        return static_cast<Real>(std::atof(s));
    return Real(0.15);
}

/** Frames per sequence for bench runs (env RTGS_BENCH_FRAMES). */
inline u32
benchFrames()
{
    if (const char *s = std::getenv("RTGS_BENCH_FRAMES"))
        return static_cast<u32>(std::atoi(s));
    return 12;
}

/** Announce the active scaling so outputs are self-describing. */
inline void
printBenchHeader(const char *what)
{
    std::printf("== %s ==\n", what);
    std::printf("[scale %.2f of native resolution, %u frames/sequence; "
                "hardware models interpret traces at native workload]\n\n",
                static_cast<double>(benchScale()), benchFrames());
}

/** Trim a dataset spec to the bench budget. */
inline data::DatasetSpec
benchSpec(data::DatasetSpec spec)
{
    spec.trajectory.frameCount = benchFrames();
    // ~4-6 cm inter-frame motion, the regime of real 30 FPS captures.
    spec.trajectory.revolutions =
        Real(0.006) * static_cast<Real>(benchFrames());
    return spec;
}

/** Everything a bench needs from one SLAM run. */
struct RunOutcome
{
    std::vector<hw::FrameTrace> traces;
    std::vector<SE3> trajectory;
    std::vector<SE3> gt;
    double ateRmse = 0;
    double psnrDb = 0;
    size_t finalGaussians = 0;
    size_t peakBytes = 0;
    u64 fragments = 0; //!< total tracked fragments (workload proxy)
    double wallSeconds = 0;
    std::vector<core::RtgsFrameReport> reports;
};

/** Default bench iteration budget for a base algorithm profile. */
inline core::RtgsSlamConfig
benchConfig(slam::BaseAlgorithm algo)
{
    core::RtgsSlamConfig cfg;
    cfg.base = slam::SlamConfig::forAlgorithm(algo);
    cfg.base.tracker.iterations = 10;
    cfg.base.mapper.iterations = 12;
    cfg.base.kfInterval = 4;
    cfg.pruner.minGaussians = 64;
    cfg.downsampler.minWidthPixels = 48;
    return cfg;
}

/**
 * Run a full sequence, collecting per-frame hardware traces and
 * evaluation metrics.
 *
 * Trace-attribution caveat: with an async config (mapQueueDepth > 0)
 * the mapping trace sampled into a keyframe's FrameTrace is whatever
 * map iterations completed before that frame finished — possibly a
 * previous keyframe's batch, or none (the row's own batch may still
 * be queued). Benches that feed traces into hw::SystemModel should
 * use sync configs (all current ones do); the async fig15 ablation
 * only consumes reports/wall-clock, which are exact.
 */
inline RunOutcome
runSequence(data::SyntheticDataset &dataset,
            const core::RtgsSlamConfig &config)
{
    core::RtgsSlam rtgs(config, dataset.intrinsics());

    RunOutcome out;
    hw::IterationTrace last_track, last_map;
    bool have_track = false, have_map = false;
    // The map hook fires on a pool worker in async configurations;
    // guard the map-side trace fields against the frame loop's reads.
    std::mutex map_trace_mutex;
    u32 track_iters = 0;

    rtgs.setExternalTrackHook(
        [&](const slam::TrackIterationContext &ctx) {
            // trackingCloud(): the cloud this iteration rendered (the
            // COW clone in async mode — the authoritative cloud may be
            // mid-mutation on a map worker there).
            last_track = hw::IterationTrace::capture(
                *ctx.forward,
                rtgs.system().trackingCloud().activeCount());
            have_track = true;
            ++track_iters;
            out.fragments += ctx.forward->result.totalFragments();
        });
    rtgs.system().setMapIterationHook(
        [&](const slam::MapIterationContext &ctx) {
            hw::IterationTrace trace = hw::IterationTrace::capture(
                *ctx.forward, rtgs.system().cloud().activeCount());
            std::lock_guard<std::mutex> lock(map_trace_mutex);
            last_map = trace;
            have_map = true;
        });

    auto t0 = std::chrono::steady_clock::now();
    for (u32 f = 0; f < dataset.frameCount(); ++f) {
        track_iters = 0;
        auto report = rtgs.processFrame(dataset.frame(f));
        hw::FrameTrace ft;
        ft.isKeyframe = report.base.isKeyframe;
        ft.trackIterations = have_track ? track_iters : 0;
        if (have_track)
            ft.tracking = last_track;
        {
            std::lock_guard<std::mutex> lock(map_trace_mutex);
            ft.mapIterations =
                report.base.isKeyframe && have_map
                    ? config.base.mapper.iterations
                    : 0;
            if (have_map)
                ft.mapping = last_map;
        }
        out.traces.push_back(std::move(ft));
        out.gt.push_back(dataset.gtPose(f));
        have_track = false;
    }
    // Drain asynchronously enqueued mapping inside the timed region so
    // async configurations pay for their full pipeline.
    rtgs.finish();
    out.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    out.trajectory = rtgs.system().trajectory();
    out.ateRmse = slam::computeAte(out.trajectory, out.gt).rmse;
    u32 mid = dataset.frameCount() / 2;
    out.psnrDb = psnr(rtgs.system().renderView(dataset.gtPose(mid)),
                      dataset.frame(mid).rgb);
    out.finalGaussians = rtgs.system().cloud().size();
    out.peakBytes = rtgs.system().peakGaussianBytes();
    out.reports = rtgs.reports();
    return out;
}

/**
 * Open a bench's JSON result file for writing. Each bench has its own
 * override variable so exporting one does not make two benches clobber
 * a shared path. Returns null (with a message) on failure.
 */
inline std::FILE *
openBenchJson(const char *env_var, const char *default_path,
              std::string &path_out)
{
    const char *path = std::getenv(env_var);
    if (!path)
        path = default_path;
    path_out = path;
    std::FILE *out = std::fopen(path, "w");
    if (!out)
        std::fprintf(stderr, "cannot open %s\n", path);
    return out;
}

/** System model at the bench's workload scaling. */
inline hw::SystemModel
benchSystemModel(const hw::GpuSpec &gpu)
{
    double s = static_cast<double>(benchScale());
    return hw::SystemModel(gpu, s * s);
}

/**
 * Peak Gaussian memory in MB at this workload: parameters plus Adam
 * moments (2x) plus gradients (1x). Absolute values are far below the
 * paper's GB figures because the synthetic maps are proportionally
 * smaller; the *ratios between rows* are the reproduced quantity.
 */
inline double
runtimeMemoryMb(size_t param_bytes)
{
    return static_cast<double>(param_bytes) * 4.0 / 1e6;
}

} // namespace rtgs::bench

#endif // RTGS_BENCH_BENCH_UTIL_HH
