/**
 * @file
 * Regenerates Fig. 15: (a) end-to-end FPS of the four system
 * configurations (edge GPU, +DISTWAR, RTGS tracking-only, RTGS full)
 * for three algorithms on three datasets, against the 30 FPS real-time
 * bar; (b) energy-efficiency improvement of the full RTGS system over
 * the GPU baseline across the four datasets; (c) the frame-level
 * similarity gate on a near-static sequence: gated-vs-ungated tracking
 * iterations, wall-clock, and PSNR cost.
 *
 * Expected shape: DISTWAR gives small gains; RTGS tracking-only is
 * large but can miss 30 FPS on heavy datasets; full RTGS crosses
 * 30 FPS everywhere, with order-of-magnitude energy-efficiency gains.
 * The gate must skip >= 40% of tracking iterations on the near-static
 * sequence for < 0.5 dB of PSNR.
 *
 * Results are written to BENCH_fig15_end_to_end.json (override with
 * RTGS_BENCH_JSON_FIG15) so the perf trajectory accumulates.
 */

#include "bench_util.hh"

#include <string>
#include <vector>

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 15: end-to-end FPS and energy efficiency");

    hw::SystemModel model = benchSystemModel(hw::GpuSpec::onx());
    const slam::BaseAlgorithm algos[] = {slam::BaseAlgorithm::GsSlam,
                                         slam::BaseAlgorithm::MonoGs,
                                         slam::BaseAlgorithm::PhotoSlam};

    TablePrinter fps_table({"Dataset", "Algorithm", "ONX", "DISTWAR",
                            "RTGS w/o map", "RTGS", ">=30 FPS"});
    fps_table.setTitle("(a) end-to-end FPS per system configuration");

    TablePrinter energy_table({"Dataset", "Algorithm",
                               "energy eff. gain"});
    energy_table.setTitle("\n(b) energy-efficiency improvement "
                          "(RTGS vs ONX baseline)");

    struct FpsRow
    {
        std::string dataset, algorithm;
        double gpu, distwar, noMap, full, energyGain;
    };
    std::vector<FpsRow> fps_rows;

    auto presets = data::DatasetSpec::allPresets(benchScale());
    for (size_t d = 0; d < presets.size(); ++d) {
        data::DatasetSpec spec = benchSpec(presets[d]);
        for (auto algo : algos) {
            // Base workload for the GPU rows.
            data::SyntheticDataset ds_base(spec);
            core::RtgsSlamConfig base_cfg = benchConfig(algo);
            base_cfg.enablePruning = false;
            base_cfg.enableDownsampling = false;
            RunOutcome base = runSequence(ds_base, base_cfg);

            // RTGS-algorithm workload for the plug-in rows.
            data::SyntheticDataset ds_ours(spec);
            RunOutcome ours = runSequence(ds_ours, benchConfig(algo));

            auto gpu = model.sequenceReport(base.traces,
                                            hw::SystemKind::GpuBaseline);
            auto distwar = model.sequenceReport(
                base.traces, hw::SystemKind::GpuDistwar);
            auto no_map = model.sequenceReport(
                ours.traces, hw::SystemKind::RtgsNoMapping);
            auto full = model.sequenceReport(ours.traces,
                                             hw::SystemKind::RtgsFull);

            double energy_gain =
                gpu.energyPerFrame() / full.energyPerFrame();
            if (d < 3) { // Fig. 15a shows three datasets
                fps_table.addRow(
                    {spec.name, slam::algorithmName(algo),
                     TablePrinter::num(gpu.fps(), 1),
                     TablePrinter::num(distwar.fps(), 1),
                     TablePrinter::num(no_map.fps(), 1),
                     TablePrinter::num(full.fps(), 1),
                     full.fps() >= 30 ? "yes" : "NO"});
                fps_rows.push_back({spec.name,
                                    slam::algorithmName(algo),
                                    gpu.fps(), distwar.fps(),
                                    no_map.fps(), full.fps(),
                                    energy_gain});
            }
            energy_table.addRow(
                {spec.name, slam::algorithmName(algo),
                 TablePrinter::num(energy_gain, 1) + "x"});
        }
    }
    fps_table.print();
    energy_table.print();

    // --- (c) frame-level similarity gating on a near-static sequence
    data::DatasetSpec static_spec =
        benchSpec(data::DatasetSpec::tumLike(benchScale()));
    // ~1-2 mm inter-frame motion: the gate's target regime (Fig. 5).
    static_spec.trajectory.revolutions =
        Real(0.0002) * static_cast<Real>(benchFrames());

    auto run_gated = [&](bool gated) {
        data::SyntheticDataset ds(static_spec);
        core::RtgsSlamConfig cfg =
            benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enablePruning = false;
        cfg.enableDownsampling = false;
        cfg.gate.enabled = gated;
        return runSequence(ds, cfg);
    };
    RunOutcome ungated = run_gated(false);
    RunOutcome gated = run_gated(true);

    auto track_iters = [](const RunOutcome &o) {
        u64 iters = 0;
        for (const auto &r : o.reports)
            iters += r.base.trackIterations;
        return iters;
    };
    u64 iters_ungated = track_iters(ungated);
    u64 iters_gated = track_iters(gated);
    double skipped =
        iters_ungated
            ? 1.0 - static_cast<double>(iters_gated) /
                        static_cast<double>(iters_ungated)
            : 0.0;
    double psnr_drop = ungated.psnrDb - gated.psnrDb;

    TablePrinter gate_table({"run", "track iters", "wall s", "PSNR dB"});
    gate_table.setTitle("\n(c) similarity gate on a near-static "
                        "sequence (MonoGS)");
    gate_table.addRow({"ungated", std::to_string(iters_ungated),
                       TablePrinter::num(ungated.wallSeconds, 3),
                       TablePrinter::num(ungated.psnrDb, 2)});
    gate_table.addRow({"gated", std::to_string(iters_gated),
                       TablePrinter::num(gated.wallSeconds, 3),
                       TablePrinter::num(gated.psnrDb, 2)});
    gate_table.print();
    std::printf("\ngate skipped %.1f%% of tracking iterations for "
                "%.3f dB of PSNR (target: >=40%%, <0.5 dB)\n",
                100.0 * skipped, psnr_drop);

    std::printf("\nShape check vs paper Fig. 15: DISTWAR < RTGS w/o "
                "mapping < RTGS; the full system\nclears 30 FPS on every "
                "algorithm/dataset; paper's energy gains are "
                "32.7x-73.0x.\n");

    std::string path;
    std::FILE *out = openBenchJson("RTGS_BENCH_JSON_FIG15",
                                   "BENCH_fig15_end_to_end.json", path);
    if (!out)
        return 1;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"fig15_end_to_end\",\n"
                 "  \"scale\": %.3f,\n"
                 "  \"frames\": %u,\n"
                 "  \"fps\": [\n",
                 static_cast<double>(benchScale()), benchFrames());
    for (size_t i = 0; i < fps_rows.size(); ++i) {
        const FpsRow &r = fps_rows[i];
        std::fprintf(out,
                     "    {\"dataset\": \"%s\", \"algorithm\": \"%s\", "
                     "\"onx\": %.2f, \"distwar\": %.2f, "
                     "\"rtgs_no_map\": %.2f, \"rtgs\": %.2f, "
                     "\"energy_gain\": %.2f}%s\n",
                     r.dataset.c_str(), r.algorithm.c_str(), r.gpu,
                     r.distwar, r.noMap, r.full, r.energyGain,
                     i + 1 == fps_rows.size() ? "" : ",");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"gating_near_static\": {\n"
                 "    \"algorithm\": \"MonoGS\",\n"
                 "    \"track_iters_ungated\": %llu,\n"
                 "    \"track_iters_gated\": %llu,\n"
                 "    \"iterations_skipped_fraction\": %.4f,\n"
                 "    \"wall_seconds_ungated\": %.4f,\n"
                 "    \"wall_seconds_gated\": %.4f,\n"
                 "    \"psnr_db_ungated\": %.3f,\n"
                 "    \"psnr_db_gated\": %.3f,\n"
                 "    \"psnr_db_drop\": %.4f\n"
                 "  }\n"
                 "}\n",
                 static_cast<unsigned long long>(iters_ungated),
                 static_cast<unsigned long long>(iters_gated), skipped,
                 ungated.wallSeconds, gated.wallSeconds, ungated.psnrDb,
                 gated.psnrDb, psnr_drop);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
