/**
 * @file
 * Regenerates Fig. 15: (a) end-to-end FPS of the four system
 * configurations (edge GPU, +DISTWAR, RTGS tracking-only, RTGS full)
 * for three algorithms on three datasets, against the 30 FPS real-time
 * bar; (b) energy-efficiency improvement of the full RTGS system over
 * the GPU baseline across the four datasets.
 *
 * Expected shape: DISTWAR gives small gains; RTGS tracking-only is
 * large but can miss 30 FPS on heavy datasets; full RTGS crosses
 * 30 FPS everywhere, with order-of-magnitude energy-efficiency gains.
 */

#include "bench_util.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 15: end-to-end FPS and energy efficiency");

    hw::SystemModel model = benchSystemModel(hw::GpuSpec::onx());
    const slam::BaseAlgorithm algos[] = {slam::BaseAlgorithm::GsSlam,
                                         slam::BaseAlgorithm::MonoGs,
                                         slam::BaseAlgorithm::PhotoSlam};

    TablePrinter fps_table({"Dataset", "Algorithm", "ONX", "DISTWAR",
                            "RTGS w/o map", "RTGS", ">=30 FPS"});
    fps_table.setTitle("(a) end-to-end FPS per system configuration");

    TablePrinter energy_table({"Dataset", "Algorithm",
                               "energy eff. gain"});
    energy_table.setTitle("\n(b) energy-efficiency improvement "
                          "(RTGS vs ONX baseline)");

    auto presets = data::DatasetSpec::allPresets(benchScale());
    for (size_t d = 0; d < presets.size(); ++d) {
        data::DatasetSpec spec = benchSpec(presets[d]);
        for (auto algo : algos) {
            // Base workload for the GPU rows.
            data::SyntheticDataset ds_base(spec);
            core::RtgsSlamConfig base_cfg = benchConfig(algo);
            base_cfg.enablePruning = false;
            base_cfg.enableDownsampling = false;
            RunOutcome base = runSequence(ds_base, base_cfg);

            // RTGS-algorithm workload for the plug-in rows.
            data::SyntheticDataset ds_ours(spec);
            RunOutcome ours = runSequence(ds_ours, benchConfig(algo));

            auto gpu = model.sequenceReport(base.traces,
                                            hw::SystemKind::GpuBaseline);
            auto distwar = model.sequenceReport(
                base.traces, hw::SystemKind::GpuDistwar);
            auto no_map = model.sequenceReport(
                ours.traces, hw::SystemKind::RtgsNoMapping);
            auto full = model.sequenceReport(ours.traces,
                                             hw::SystemKind::RtgsFull);

            if (d < 3) { // Fig. 15a shows three datasets
                fps_table.addRow(
                    {spec.name, slam::algorithmName(algo),
                     TablePrinter::num(gpu.fps(), 1),
                     TablePrinter::num(distwar.fps(), 1),
                     TablePrinter::num(no_map.fps(), 1),
                     TablePrinter::num(full.fps(), 1),
                     full.fps() >= 30 ? "yes" : "NO"});
            }
            energy_table.addRow(
                {spec.name, slam::algorithmName(algo),
                 TablePrinter::num(gpu.energyPerFrame() /
                                   full.energyPerFrame(), 1) + "x"});
        }
    }
    fps_table.print();
    energy_table.print();

    std::printf("\nShape check vs paper Fig. 15: DISTWAR < RTGS w/o "
                "mapping < RTGS; the full system\nclears 30 FPS on every "
                "algorithm/dataset; paper's energy gains are "
                "32.7x-73.0x.\n");
    return 0;
}
