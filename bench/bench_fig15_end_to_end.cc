/**
 * @file
 * Regenerates Fig. 15: (a) end-to-end FPS of the four system
 * configurations (edge GPU, +DISTWAR, RTGS tracking-only, RTGS full)
 * for three algorithms on three datasets, against the 30 FPS real-time
 * bar; (b) energy-efficiency improvement of the full RTGS system over
 * the GPU baseline across the four datasets; (c) the frame-level
 * similarity gate on a near-static sequence: gated-vs-ungated tracking
 * iterations, wall-clock, and PSNR cost.
 *
 * Expected shape: DISTWAR gives small gains; RTGS tracking-only is
 * large but can miss 30 FPS on heavy datasets; full RTGS crosses
 * 30 FPS everywhere, with order-of-magnitude energy-efficiency gains.
 * The gate must skip >= 40% of tracking iterations on the near-static
 * sequence for < 0.5 dB of PSNR.
 *
 * Since the batched-drain/COW-snapshot work the bench also runs (d): a
 * mapBatchSize ablation of the asynchronous mapping path on an
 * every-frame-keyframe (SplaTAM-like) burst workload, recording
 * snapshot-publish wall time (copy-on-write refcount bumps vs the
 * deep-copy a pre-COW publish paid) and queue staleness (frames
 * between the snapshot tracking rendered and the newest map).
 *
 * Since the multi-view mapping work it also runs (e): a
 * multiViewWindow {0, 2, 4} ablation of the cross-keyframe mapping
 * step (each optimiser step renders up to B window keyframes and
 * applies one averaged update). B >= 2 changes the numerics, so the
 * quality ablation — wall-clock AND PSNR/ATE — is part of the
 * deliverable, not just the timing.
 *
 * Results are written to BENCH_fig15_end_to_end.json (override with
 * RTGS_BENCH_JSON_FIG15) so the perf trajectory accumulates.
 */

#include "bench_util.hh"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 15: end-to-end FPS and energy efficiency");

    hw::SystemModel model = benchSystemModel(hw::GpuSpec::onx());
    const slam::BaseAlgorithm algos[] = {slam::BaseAlgorithm::GsSlam,
                                         slam::BaseAlgorithm::MonoGs,
                                         slam::BaseAlgorithm::PhotoSlam};

    TablePrinter fps_table({"Dataset", "Algorithm", "ONX", "DISTWAR",
                            "RTGS w/o map", "RTGS", ">=30 FPS"});
    fps_table.setTitle("(a) end-to-end FPS per system configuration");

    TablePrinter energy_table({"Dataset", "Algorithm",
                               "energy eff. gain"});
    energy_table.setTitle("\n(b) energy-efficiency improvement "
                          "(RTGS vs ONX baseline)");

    struct FpsRow
    {
        std::string dataset, algorithm;
        double gpu, distwar, noMap, full, energyGain;
    };
    std::vector<FpsRow> fps_rows;

    auto presets = data::DatasetSpec::allPresets(benchScale());
    for (size_t d = 0; d < presets.size(); ++d) {
        data::DatasetSpec spec = benchSpec(presets[d]);
        for (auto algo : algos) {
            // Base workload for the GPU rows.
            data::SyntheticDataset ds_base(spec);
            core::RtgsSlamConfig base_cfg = benchConfig(algo);
            base_cfg.enablePruning = false;
            base_cfg.enableDownsampling = false;
            RunOutcome base = runSequence(ds_base, base_cfg);

            // RTGS-algorithm workload for the plug-in rows.
            data::SyntheticDataset ds_ours(spec);
            RunOutcome ours = runSequence(ds_ours, benchConfig(algo));

            auto gpu = model.sequenceReport(base.traces,
                                            hw::SystemKind::GpuBaseline);
            auto distwar = model.sequenceReport(
                base.traces, hw::SystemKind::GpuDistwar);
            auto no_map = model.sequenceReport(
                ours.traces, hw::SystemKind::RtgsNoMapping);
            auto full = model.sequenceReport(ours.traces,
                                             hw::SystemKind::RtgsFull);

            double energy_gain =
                gpu.energyPerFrame() / full.energyPerFrame();
            if (d < 3) { // Fig. 15a shows three datasets
                fps_table.addRow(
                    {spec.name, slam::algorithmName(algo),
                     TablePrinter::num(gpu.fps(), 1),
                     TablePrinter::num(distwar.fps(), 1),
                     TablePrinter::num(no_map.fps(), 1),
                     TablePrinter::num(full.fps(), 1),
                     full.fps() >= 30 ? "yes" : "NO"});
                fps_rows.push_back({spec.name,
                                    slam::algorithmName(algo),
                                    gpu.fps(), distwar.fps(),
                                    no_map.fps(), full.fps(),
                                    energy_gain});
            }
            energy_table.addRow(
                {spec.name, slam::algorithmName(algo),
                 TablePrinter::num(energy_gain, 1) + "x"});
        }
    }
    fps_table.print();
    energy_table.print();

    // --- (c) frame-level similarity gating on a near-static sequence
    data::DatasetSpec static_spec =
        benchSpec(data::DatasetSpec::tumLike(benchScale()));
    // ~1-2 mm inter-frame motion: the gate's target regime (Fig. 5).
    static_spec.trajectory.revolutions =
        Real(0.0002) * static_cast<Real>(benchFrames());

    auto run_gated = [&](bool gated) {
        data::SyntheticDataset ds(static_spec);
        core::RtgsSlamConfig cfg =
            benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enablePruning = false;
        cfg.enableDownsampling = false;
        cfg.gate.enabled = gated;
        return runSequence(ds, cfg);
    };
    RunOutcome ungated = run_gated(false);
    RunOutcome gated = run_gated(true);

    auto track_iters = [](const RunOutcome &o) {
        u64 iters = 0;
        for (const auto &r : o.reports)
            iters += r.base.trackIterations;
        return iters;
    };
    u64 iters_ungated = track_iters(ungated);
    u64 iters_gated = track_iters(gated);
    double skipped =
        iters_ungated
            ? 1.0 - static_cast<double>(iters_gated) /
                        static_cast<double>(iters_ungated)
            : 0.0;
    double psnr_drop = ungated.psnrDb - gated.psnrDb;

    TablePrinter gate_table({"run", "track iters", "wall s", "PSNR dB"});
    gate_table.setTitle("\n(c) similarity gate on a near-static "
                        "sequence (MonoGS)");
    gate_table.addRow({"ungated", std::to_string(iters_ungated),
                       TablePrinter::num(ungated.wallSeconds, 3),
                       TablePrinter::num(ungated.psnrDb, 2)});
    gate_table.addRow({"gated", std::to_string(iters_gated),
                       TablePrinter::num(gated.wallSeconds, 3),
                       TablePrinter::num(gated.psnrDb, 2)});
    gate_table.print();
    std::printf("\ngate skipped %.1f%% of tracking iterations for "
                "%.3f dB of PSNR (target: >=40%%, <0.5 dB)\n",
                100.0 * skipped, psnr_drop);

    // --- (d) async map-batching ablation (COW snapshots + batched
    // drain). SplaTAM-like maps every frame, so queued keyframes form
    // real bursts for the batched drain to absorb.
    struct BatchRow
    {
        u32 batch;
        double wallSeconds, publishMsTotal, staleMean, ateRmse;
        u32 staleMax;
        u64 publishes;
        size_t keyframes;
    };
    std::vector<BatchRow> batch_rows;
    double deepcopy_ms = 0;
    for (u32 batch : {1u, 2u, 4u}) {
        data::DatasetSpec spec =
            benchSpec(data::DatasetSpec::tumLike(benchScale()));
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg =
            benchConfig(slam::BaseAlgorithm::SplaTam);
        cfg.enablePruning = false;
        cfg.enableDownsampling = false;
        cfg.base.mapQueueDepth = 4;
        cfg.base.mapBatchSize = batch;
        RunOutcome out = runSequence(ds, cfg);

        BatchRow row{};
        row.batch = batch;
        row.wallSeconds = out.wallSeconds;
        row.ateRmse = out.ateRmse;
        slam::SnapshotStats stats;
        for (const auto &r : out.reports) {
            const auto &b = r.base;
            if (b.isKeyframe)
                ++row.keyframes;
            stats.add(b);
            if (b.snapshotGeneration > 0) {
                row.staleMax =
                    std::max(row.staleMax, b.snapshotStaleFrames);
            }
        }
        row.publishMsTotal = stats.publishSeconds * 1e3;
        row.publishes = stats.publishes;
        row.staleMean = stats.meanStaleFrames();
        batch_rows.push_back(row);

        if (batch == 1) {
            // Reference: what ONE pre-COW publish paid — a full
            // materialisation of every column, timed on a cloud sized
            // like the maps this ablation produced.
            gs::GaussianCloud final_cloud;
            for (size_t i = 0; i < out.finalGaussians; ++i) {
                final_cloud.pushIsotropic(
                    {static_cast<Real>(i % 97) * Real(0.01), 0, 2},
                    Real(0.05), Real(0.5), {0.5f, 0.5f, 0.5f});
            }
            auto t0 = std::chrono::steady_clock::now();
            gs::GaussianCloud deep = final_cloud;
            deep.positions.mut();
            deep.logScales.mut();
            deep.rotations.mut();
            deep.opacityLogits.mut();
            deep.shCoeffs.mut();
            deep.active.mut();
            deep.ids.mut();
            deepcopy_ms = std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0).count() * 1e3;
        }
    }

    // Publish-cost scaling probe: COW publication is O(columns) — a
    // refcount bump per attribute — while the pre-COW publish deep-
    // copied the cloud, O(N). Time both across map sizes so the
    // asymptote is visible even at the bench's small SLAM maps.
    struct ScaleRow
    {
        size_t gaussians;
        double cowMs, deepMs;
    };
    std::vector<ScaleRow> scale_rows;
    for (size_t n : {size_t(10'000), size_t(100'000), size_t(400'000)}) {
        gs::GaussianCloud big;
        big.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            big.pushIsotropic(
                {static_cast<Real>(i % 97) * Real(0.01), 0, 2},
                Real(0.05), Real(0.5), {0.5f, 0.5f, 0.5f});
        }
        constexpr int reps = 20;
        auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r) {
            gs::GaussianCloud snap = big; // COW publish
            (void)snap.size();
        }
        double cow_ms = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count() * 1e3 / reps;
        t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r) {
            gs::GaussianCloud snap = big; // pre-COW: materialise all
            snap.positions.mut();
            snap.logScales.mut();
            snap.rotations.mut();
            snap.opacityLogits.mut();
            snap.shCoeffs.mut();
            snap.active.mut();
            snap.ids.mut();
        }
        double deep_ms = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count() * 1e3 / reps;
        scale_rows.push_back({n, cow_ms, deep_ms});
    }

    TablePrinter batch_table({"mapBatchSize", "wall s", "publishes",
                              "publish ms (total)", "stale mean",
                              "stale max", "ATE"});
    batch_table.setTitle("\n(d) async map-batching ablation "
                         "(SplaTAM-like, queue depth 4)");
    for (const BatchRow &r : batch_rows) {
        batch_table.addRow(
            {std::to_string(r.batch),
             TablePrinter::num(r.wallSeconds, 3),
             std::to_string(r.publishes),
             TablePrinter::num(r.publishMsTotal, 3),
             TablePrinter::num(r.staleMean, 2),
             std::to_string(r.staleMax),
             TablePrinter::num(r.ateRmse, 4)});
    }
    batch_table.print();
    std::printf("\nCOW snapshot publish: %.3f ms total across the "
                "batch=1 run (deep-copying the final %s map once "
                "would cost %.3f ms)\n",
                batch_rows.empty() ? 0.0
                                   : batch_rows[0].publishMsTotal,
                "SLAM", deepcopy_ms);

    TablePrinter scale_table({"map size", "COW publish ms",
                              "deep-copy publish ms"});
    scale_table.setTitle("\nsnapshot publish cost vs map size "
                         "(COW = O(columns), deep copy = O(N))");
    for (const ScaleRow &r : scale_rows) {
        scale_table.addRow({std::to_string(r.gaussians),
                            TablePrinter::num(r.cowMs, 4),
                            TablePrinter::num(r.deepMs, 3)});
    }
    scale_table.print();

    // --- (e) multi-view mapping ablation (cross-keyframe render
    // batching). Each map optimiser step renders up to B window
    // keyframes and applies one averaged update; B = 0 is the
    // sequential per-keyframe recipe. Sync mode + a deeper keyframe
    // window so B = 4 actually gets four views to render.
    struct MultiViewRow
    {
        u32 window;
        double wallSeconds, psnrDb, ateRmse, meanViews;
        u32 maxViews;
        size_t keyframes;
    };
    std::vector<MultiViewRow> mv_rows;
    for (u32 mv : {0u, 2u, 4u}) {
        data::DatasetSpec spec =
            benchSpec(data::DatasetSpec::tumLike(benchScale()));
        data::SyntheticDataset ds(spec);
        core::RtgsSlamConfig cfg =
            benchConfig(slam::BaseAlgorithm::MonoGs);
        cfg.enablePruning = false;
        cfg.enableDownsampling = false;
        cfg.base.mapper.windowSize = 4;
        cfg.base.multiViewWindow = mv;
        RunOutcome out = runSequence(ds, cfg);

        MultiViewRow row{};
        row.window = mv;
        row.wallSeconds = out.wallSeconds;
        row.psnrDb = out.psnrDb;
        row.ateRmse = out.ateRmse;
        u64 views_sum = 0;
        for (const auto &r : out.reports) {
            if (!r.base.isKeyframe)
                continue;
            ++row.keyframes;
            views_sum += r.base.mapMultiViews;
            row.maxViews = std::max(row.maxViews,
                                    r.base.mapMultiViews);
        }
        row.meanViews =
            row.keyframes ? static_cast<double>(views_sum) /
                                static_cast<double>(row.keyframes)
                          : 0.0;
        mv_rows.push_back(row);
    }

    TablePrinter mv_table({"multiViewWindow", "wall s", "PSNR dB",
                           "ATE", "views/step mean", "views/step max"});
    mv_table.setTitle("\n(e) multi-view mapping ablation "
                      "(MonoGS, window size 4, sync)");
    for (const MultiViewRow &r : mv_rows) {
        mv_table.addRow({std::to_string(r.window),
                         TablePrinter::num(r.wallSeconds, 3),
                         TablePrinter::num(r.psnrDb, 2),
                         TablePrinter::num(r.ateRmse, 4),
                         TablePrinter::num(r.meanViews, 2),
                         std::to_string(r.maxViews)});
    }
    mv_table.print();

    std::printf("\nShape check vs paper Fig. 15: DISTWAR < RTGS w/o "
                "mapping < RTGS; the full system\nclears 30 FPS on every "
                "algorithm/dataset; paper's energy gains are "
                "32.7x-73.0x.\n");

    std::string path;
    std::FILE *out = openBenchJson("RTGS_BENCH_JSON_FIG15",
                                   "BENCH_fig15_end_to_end.json", path);
    if (!out)
        return 1;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"fig15_end_to_end\",\n"
                 "  \"scale\": %.3f,\n"
                 "  \"frames\": %u,\n"
                 "  \"fps\": [\n",
                 static_cast<double>(benchScale()), benchFrames());
    for (size_t i = 0; i < fps_rows.size(); ++i) {
        const FpsRow &r = fps_rows[i];
        std::fprintf(out,
                     "    {\"dataset\": \"%s\", \"algorithm\": \"%s\", "
                     "\"onx\": %.2f, \"distwar\": %.2f, "
                     "\"rtgs_no_map\": %.2f, \"rtgs\": %.2f, "
                     "\"energy_gain\": %.2f}%s\n",
                     r.dataset.c_str(), r.algorithm.c_str(), r.gpu,
                     r.distwar, r.noMap, r.full, r.energyGain,
                     i + 1 == fps_rows.size() ? "" : ",");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"map_batching\": {\n"
                 "    \"algorithm\": \"SplaTAM\",\n"
                 "    \"map_queue_depth\": 4,\n"
                 "    \"snapshot_deepcopy_ms_reference\": %.4f,\n"
                 "    \"publish_scaling\": [\n",
                 deepcopy_ms);
    for (size_t i = 0; i < scale_rows.size(); ++i) {
        const ScaleRow &r = scale_rows[i];
        std::fprintf(out,
                     "      {\"gaussians\": %zu, "
                     "\"cow_publish_ms\": %.5f, "
                     "\"deepcopy_publish_ms\": %.4f}%s\n",
                     r.gaussians, r.cowMs, r.deepMs,
                     i + 1 == scale_rows.size() ? "" : ",");
    }
    std::fprintf(out,
                 "    ],\n"
                 "    \"rows\": [\n");
    for (size_t i = 0; i < batch_rows.size(); ++i) {
        const BatchRow &r = batch_rows[i];
        std::fprintf(
            out,
            "      {\"map_batch_size\": %u, \"wall_seconds\": %.4f, "
            "\"keyframes\": %zu, \"snapshot_publishes\": %llu, "
            "\"snapshot_publish_ms\": %.4f, "
            "\"queue_stale_frames_mean\": %.3f, "
            "\"queue_stale_frames_max\": %u, \"ate_rmse\": %.5f}%s\n",
            r.batch, r.wallSeconds, r.keyframes,
            static_cast<unsigned long long>(r.publishes),
            r.publishMsTotal, r.staleMean, r.staleMax, r.ateRmse,
            i + 1 == batch_rows.size() ? "" : ",");
    }
    std::fprintf(out,
                 "    ]\n"
                 "  },\n"
                 "  \"multi_view_mapping\": {\n"
                 "    \"algorithm\": \"MonoGS\",\n"
                 "    \"window_size\": 4,\n"
                 "    \"rows\": [\n");
    for (size_t i = 0; i < mv_rows.size(); ++i) {
        const MultiViewRow &r = mv_rows[i];
        std::fprintf(
            out,
            "      {\"multi_view_window\": %u, "
            "\"wall_seconds\": %.4f, \"psnr_db\": %.3f, "
            "\"ate_rmse\": %.5f, \"keyframes\": %zu, "
            "\"views_per_step_mean\": %.3f, "
            "\"views_per_step_max\": %u}%s\n",
            r.window, r.wallSeconds, r.psnrDb, r.ateRmse, r.keyframes,
            r.meanViews, r.maxViews,
            i + 1 == mv_rows.size() ? "" : ",");
    }
    std::fprintf(out,
                 "    ]\n"
                 "  },\n"
                 "  \"gating_near_static\": {\n"
                 "    \"algorithm\": \"MonoGS\",\n"
                 "    \"track_iters_ungated\": %llu,\n"
                 "    \"track_iters_gated\": %llu,\n"
                 "    \"iterations_skipped_fraction\": %.4f,\n"
                 "    \"wall_seconds_ungated\": %.4f,\n"
                 "    \"wall_seconds_gated\": %.4f,\n"
                 "    \"psnr_db_ungated\": %.3f,\n"
                 "    \"psnr_db_gated\": %.3f,\n"
                 "    \"psnr_db_drop\": %.4f\n"
                 "  }\n"
                 "}\n",
                 static_cast<unsigned long long>(iters_ungated),
                 static_cast<unsigned long long>(iters_gated), skipped,
                 ungated.wallSeconds, gated.wallSeconds, ungated.psnrDb,
                 gated.psnrDb, psnr_drop);
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
