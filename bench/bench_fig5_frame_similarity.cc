/**
 * @file
 * Regenerates Fig. 5: inter-frame similarity (RMSE down, SSIM up)
 * between consecutive frames, annotated with keyframe positions.
 * Expected shape: high similarity throughout; frames right after a
 * keyframe are the most similar to it, degrading with distance —
 * the premise of dynamic downsampling (Observation 5).
 */

#include "bench_util.hh"

#include "common/stats.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 5: similarity of consecutive frames "
                     "(TUM-like, MonoGS keyframing)");

    data::DatasetSpec spec =
        benchSpec(data::DatasetSpec::tumLike(benchScale()));
    spec.trajectory.frameCount = std::max(benchFrames(), 16u);
    data::SyntheticDataset dataset(spec);

    const u32 kf_interval = 4;
    TablePrinter table({"frame", "kf?", "RMSE vs prev", "SSIM vs prev",
                        "RMSE vs last kf"});

    u32 last_kf = 0;
    RunningStat near_rmse, far_rmse;
    for (u32 f = 1; f < dataset.frameCount(); ++f) {
        bool kf = f % kf_interval == 0;
        if (kf)
            last_kf = f;
        const auto &cur = dataset.frame(f);
        const auto &prev = dataset.frame(f - 1);
        const auto &kf_frame = dataset.frame(last_kf);
        double rmse_prev = imageRmse(cur.rgb, prev.rgb);
        double ssim_prev = ssim(cur.rgb, prev.rgb);
        double rmse_kf = imageRmse(cur.rgb, kf_frame.rgb);
        table.addRow({std::to_string(f), kf ? "*" : "",
                      TablePrinter::num(rmse_prev, 4),
                      TablePrinter::num(ssim_prev, 3),
                      TablePrinter::num(rmse_kf, 4)});
        u32 dist = f - last_kf;
        (dist <= 1 ? near_rmse : far_rmse).add(rmse_kf);
    }
    table.print();

    std::printf("\nmean RMSE to nearest keyframe:  distance<=1: %.4f   "
                "distance>1: %.4f\n", near_rmse.mean(), far_rmse.mean());
    std::printf("\nShape check vs paper Fig. 5: consecutive frames are "
                "highly similar and similarity\nto the last keyframe "
                "decays with distance -> adaptive resolution is safe "
                "near keyframes.\n");
    return 0;
}
