/**
 * @file
 * Regenerates Fig. 5: inter-frame similarity (RMSE down, SSIM up)
 * between consecutive frames, annotated with keyframe positions.
 * Expected shape: high similarity throughout; frames right after a
 * keyframe are the most similar to it, degrading with distance —
 * the premise of dynamic downsampling (Observation 5) and of the
 * frame-level similarity gate.
 *
 * Also feeds the sequence through core::SimilarityGate and writes
 * BENCH_fig5_frame_similarity.json (override with
 * RTGS_BENCH_JSON_FIG5) so the gate's budget trajectory accumulates
 * alongside the figure data.
 */

#include "bench_util.hh"

#include "common/stats.hh"
#include "core/similarity_gate.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 5: similarity of consecutive frames "
                     "(TUM-like, MonoGS keyframing)");

    data::DatasetSpec spec =
        benchSpec(data::DatasetSpec::tumLike(benchScale()));
    spec.trajectory.frameCount = std::max(benchFrames(), 16u);
    data::SyntheticDataset dataset(spec);

    const u32 kf_interval = 4;
    TablePrinter table({"frame", "kf?", "RMSE vs prev", "SSIM vs prev",
                        "RMSE vs last kf", "gate budget"});

    core::SimilarityGateConfig gate_cfg;
    gate_cfg.enabled = true;
    gate_cfg.useSsim = true;
    core::SimilarityGate gate(gate_cfg);
    gate.evaluate(dataset.frame(0).rgb, nullptr);

    struct Row
    {
        u32 frame;
        bool kf;
        double rmsePrev, ssimPrev, rmseKf, budgetScale;
    };
    std::vector<Row> rows;

    u32 last_kf = 0;
    RunningStat near_rmse, far_rmse, budget_scales;
    for (u32 f = 1; f < dataset.frameCount(); ++f) {
        bool kf = f % kf_interval == 0;
        if (kf)
            last_kf = f;
        const auto &cur = dataset.frame(f);
        const auto &prev = dataset.frame(f - 1);
        const auto &kf_frame = dataset.frame(last_kf);
        double rmse_prev = imageRmse(cur.rgb, prev.rgb);
        double ssim_prev = ssim(cur.rgb, prev.rgb);
        double rmse_kf = imageRmse(cur.rgb, kf_frame.rgb);
        core::GateDecision d = gate.evaluate(cur.rgb, nullptr);
        table.addRow({std::to_string(f), kf ? "*" : "",
                      TablePrinter::num(rmse_prev, 4),
                      TablePrinter::num(ssim_prev, 3),
                      TablePrinter::num(rmse_kf, 4),
                      TablePrinter::num(d.budgetScale, 2)});
        rows.push_back({f, kf, rmse_prev, ssim_prev, rmse_kf,
                        static_cast<double>(d.budgetScale)});
        budget_scales.add(d.budgetScale);
        u32 dist = f - last_kf;
        (dist <= 1 ? near_rmse : far_rmse).add(rmse_kf);
    }
    table.print();

    std::printf("\nmean RMSE to nearest keyframe:  distance<=1: %.4f   "
                "distance>1: %.4f\n", near_rmse.mean(), far_rmse.mean());
    std::printf("mean gate budget scale: %.2f (1 = ungated)\n",
                budget_scales.mean());
    std::printf("\nShape check vs paper Fig. 5: consecutive frames are "
                "highly similar and similarity\nto the last keyframe "
                "decays with distance -> adaptive resolution is safe "
                "near keyframes.\n");

    std::string path;
    std::FILE *out = openBenchJson("RTGS_BENCH_JSON_FIG5",
                                   "BENCH_fig5_frame_similarity.json",
                                   path);
    if (!out)
        return 1;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"fig5_frame_similarity\",\n"
                 "  \"frames\": %u,\n"
                 "  \"scale\": %.3f,\n"
                 "  \"kf_interval\": %u,\n"
                 "  \"mean_rmse_kf_near\": %.6f,\n"
                 "  \"mean_rmse_kf_far\": %.6f,\n"
                 "  \"mean_gate_budget_scale\": %.4f,\n"
                 "  \"per_frame\": [\n",
                 dataset.frameCount(),
                 static_cast<double>(benchScale()), kf_interval,
                 near_rmse.mean(), far_rmse.mean(),
                 budget_scales.mean());
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(out,
                     "    {\"frame\": %u, \"keyframe\": %s, "
                     "\"rmse_prev\": %.6f, \"ssim_prev\": %.4f, "
                     "\"rmse_kf\": %.6f, \"gate_budget_scale\": %.4f}%s\n",
                     r.frame, r.kf ? "true" : "false", r.rmsePrev,
                     r.ssimPrev, r.rmseKf, r.budgetScale,
                     i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}
