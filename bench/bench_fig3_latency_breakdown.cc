/**
 * @file
 * Regenerates Fig. 3: (a) the tracking/mapping/other split of total
 * runtime for three algorithms on two datasets, and (b) the per-step
 * breakdown of a single tracking and mapping iteration (MonoGS-like),
 * both from the edge-GPU timing model.
 *
 * Expected shape: tracking+mapping >80% of runtime; within an
 * iteration, Rendering + Rendering BP dominate (>80%).
 */

#include "bench_util.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 3: latency breakdown on the edge GPU");

    hw::SystemModel model = benchSystemModel(hw::GpuSpec::onx());
    const slam::BaseAlgorithm algos[] = {slam::BaseAlgorithm::GsSlam,
                                         slam::BaseAlgorithm::MonoGs,
                                         slam::BaseAlgorithm::PhotoSlam};

    // (a) Stage-level split per algorithm and dataset.
    TablePrinter stage({"Dataset", "Algorithm", "Tracking %", "Mapping %",
                        "Other %"});
    stage.setTitle("(a) pipeline-stage share of total runtime");

    hw::FrameTrace monogs_frame; // saved for part (b)
    for (const char *ds : {"tum", "scannet"}) {
        data::DatasetSpec spec = benchSpec(
            std::string(ds) == "tum"
                ? data::DatasetSpec::tumLike(benchScale())
                : data::DatasetSpec::scannetLike(benchScale()));
        for (auto algo : algos) {
            data::SyntheticDataset dataset(spec);
            core::RtgsSlamConfig cfg = benchConfig(algo);
            cfg.enablePruning = false;
            cfg.enableDownsampling = false;
            RunOutcome run = runSequence(dataset, cfg);
            auto rep = model.sequenceReport(run.traces,
                                            hw::SystemKind::GpuBaseline);
            // "Other" = keyframe selection, data movement, bookkeeping:
            // charged at 10% of stage time (paper's Fig. 3a shows a
            // small residual band).
            double track = rep.trackingSeconds;
            double map = rep.mappingSeconds;
            double other = 0.1 * (track + map);
            double total = track + map + other;
            stage.addRow({spec.name, slam::algorithmName(algo),
                          TablePrinter::num(track / total * 100, 1),
                          TablePrinter::num(map / total * 100, 1),
                          TablePrinter::num(other / total * 100, 1)});
            if (algo == slam::BaseAlgorithm::MonoGs &&
                std::string(ds) == "tum") {
                for (const auto &ft : run.traces) {
                    if (ft.isKeyframe && ft.trackIterations > 0) {
                        monogs_frame = ft;
                        break;
                    }
                }
            }
        }
    }
    stage.print();

    // (b) Step-level breakdown of a single iteration (MonoGS, TUM).
    auto steps = model.gpuModel().iterationTime(monogs_frame.tracking);
    TablePrinter step_table({"Step", "Time (ms)", "Share %"});
    step_table.setTitle("\n(b) per-step breakdown of one tracking "
                        "iteration (MonoGS-like, TUM-like)");
    double total = steps.total();
    auto add = [&](const char *name, double t) {
        step_table.addRow({name, TablePrinter::num(t * 1e3, 3),
                           TablePrinter::num(t / total * 100, 1)});
    };
    add("1 Preprocessing", steps.preprocess);
    add("2 Sorting", steps.sort);
    add("3 Rendering", steps.render);
    add("4 Rendering BP", steps.renderBp);
    add("5 Preprocessing BP", steps.preprocessBp);
    step_table.print();

    double render_share = (steps.render + steps.renderBp) / total;
    std::printf("\nShape check vs paper Fig. 3: Rendering + Rendering BP "
                "= %.0f%% of the iteration\n(paper: >80%%); tracking + "
                "mapping dominate total runtime.\n",
                render_share * 100);
    return 0;
}
