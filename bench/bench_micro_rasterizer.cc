/**
 * @file
 * google-benchmark microbenchmarks of the rasterizer kernels
 * (projection, tile intersection, depth sort, forward rasterisation,
 * backward pass) across scene sizes — the per-kernel costs behind
 * every harness in this directory.
 *
 * After the registered benchmarks run, main() times the seed's serial
 * AoS forward path (gs/reference.hh) against the parallel SoA pipeline
 * head-to-head, checks the rendered images agree to 1e-6 per channel,
 * and writes the result to BENCH_micro_rasterizer.json (override the
 * path with RTGS_BENCH_JSON) so the perf trajectory is recorded in CI.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "common/thread_pool.hh"
#include "data/scene.hh"
#include "gs/reference.hh"
#include "gs/render_pipeline.hh"

namespace
{

using namespace rtgs;

struct Fixture
{
    gs::GaussianCloud cloud;
    Camera camera;
    gs::RenderSettings settings;

    explicit Fixture(double spacing)
    {
        data::SceneConfig cfg;
        cfg.surfelSpacing = static_cast<Real>(spacing);
        cloud = data::buildScene(cfg);
        camera = Camera(Intrinsics::fromFov(1.3f, 320, 240),
                        SE3::lookAt({1.0f, -0.3f, 0.4f}, {0, 0, 0}));
    }
};

Fixture &
fixtureFor(double spacing)
{
    static Fixture coarse(0.35);
    static Fixture medium(0.22);
    static Fixture fine(0.15);
    if (spacing > 0.3)
        return coarse;
    if (spacing > 0.18)
        return medium;
    return fine;
}

double
spacingForRange(i64 arg)
{
    return arg == 0 ? 0.35 : arg == 1 ? 0.22 : 0.15;
}

void
BM_Projection(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    for (auto _ : state) {
        auto proj = gs::projectGaussians(f.cloud, f.camera, f.settings);
        benchmark::DoNotOptimize(proj.items.data());
    }
    state.counters["gaussians"] = static_cast<double>(f.cloud.size());
}

void
BM_TileIntersection(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    auto proj = gs::projectGaussians(f.cloud, f.camera, f.settings);
    gs::TileGrid grid(320, 240, f.settings.tileSize);
    for (auto _ : state) {
        auto bins = gs::intersectTiles(proj, grid);
        benchmark::DoNotOptimize(bins.indices.data());
    }
}

void
BM_DepthSort(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    auto proj = gs::projectGaussians(f.cloud, f.camera, f.settings);
    gs::TileGrid grid(320, 240, f.settings.tileSize);
    auto bins = gs::intersectTiles(proj, grid);
    for (auto _ : state) {
        auto copy = bins;
        gs::sortTilesByDepth(copy, proj);
        benchmark::DoNotOptimize(copy.indices.data());
    }
}

void
BM_ForwardRaster(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    gs::RenderPipeline pipe(f.settings);
    for (auto _ : state) {
        auto ctx = pipe.forward(f.cloud, f.camera);
        benchmark::DoNotOptimize(ctx.result.image.data());
    }
}

void
BM_ForwardRasterSeed(benchmark::State &state)
{
    // The seed's serial AoS path, kept in gs/reference.hh.
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    for (auto _ : state) {
        auto ctx = gs::forwardReference(f.cloud, f.camera, f.settings);
        benchmark::DoNotOptimize(ctx.result.image.data());
    }
}

void
BM_Backward(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    gs::RenderPipeline pipe(f.settings);
    auto ctx = pipe.forward(f.cloud, f.camera);
    ImageRGB adj(320, 240, {0.3f, -0.2f, 0.1f});
    for (auto _ : state) {
        auto back = pipe.backward(f.cloud, ctx, adj, nullptr, true);
        benchmark::DoNotOptimize(back.grads.dPositions.data());
    }
}

BENCHMARK(BM_Projection)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TileIntersection)->DenseRange(0, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DepthSort)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ForwardRaster)->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ForwardRasterSeed)->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Backward)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------
// Seed-vs-RTGS head-to-head, written to BENCH_micro_rasterizer.json.
// ------------------------------------------------------------------

double
maxChannelDiff(const ImageRGB &a, const ImageRGB &b)
{
    double m = 0;
    for (size_t i = 0; i < a.pixelCount(); ++i) {
        m = std::max(m, std::abs(double(a[i].x) - double(b[i].x)));
        m = std::max(m, std::abs(double(a[i].y) - double(b[i].y)));
        m = std::max(m, std::abs(double(a[i].z) - double(b[i].z)));
    }
    return m;
}

/**
 * Min-of-reps wall and CPU time of fn, in milliseconds. The minimum is
 * robust against preemption on loaded shared machines.
 */
template <typename Fn>
void
timeMs(Fn &&fn, int reps, double &wall_ms, double &cpu_ms)
{
    wall_ms = 1e300;
    cpu_ms = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto w0 = std::chrono::steady_clock::now();
        std::clock_t c0 = std::clock();
        fn();
        std::clock_t c1 = std::clock();
        auto w1 = std::chrono::steady_clock::now();
        wall_ms = std::min(
            wall_ms, std::chrono::duration<double, std::milli>(w1 - w0)
                         .count());
        cpu_ms = std::min(cpu_ms, 1000.0 * double(c1 - c0) /
                                      double(CLOCKS_PER_SEC));
    }
}

int
writeForwardComparison()
{
    const char *path = std::getenv("RTGS_BENCH_JSON");
    if (!path)
        path = "BENCH_micro_rasterizer.json";
    int reps = 15;
    if (const char *r = std::getenv("RTGS_BENCH_COMPARE_REPS"))
        reps = std::max(1, std::atoi(r));

    Fixture &f = fixtureFor(0.22);
    gs::RenderPipeline pipe(f.settings);

    // Correctness gate: the refactored pipeline must render the same
    // image as the seed path (acceptance: <= 1e-6 per channel).
    auto seed_ctx = gs::forwardReference(f.cloud, f.camera, f.settings);
    auto rtgs_ctx = pipe.forward(f.cloud, f.camera);
    double diff =
        maxChannelDiff(seed_ctx.result.image, rtgs_ctx.result.image);

    double seed_wall, seed_cpu, rtgs_wall, rtgs_cpu;
    timeMs(
        [&] {
            auto ctx = gs::forwardReference(f.cloud, f.camera, f.settings);
            benchmark::DoNotOptimize(ctx.result.image.data());
        },
        reps, seed_wall, seed_cpu);
    timeMs(
        [&] {
            auto ctx = pipe.forward(f.cloud, f.camera);
            benchmark::DoNotOptimize(ctx.result.image.data());
        },
        reps, rtgs_wall, rtgs_cpu);

    double speedup = seed_wall / rtgs_wall;
    double cpu_speedup = seed_cpu / rtgs_cpu;

    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
    }
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"micro_rasterizer_forward\",\n"
        "  \"image\": \"320x240\",\n"
        "  \"gaussians\": %zu,\n"
        "  \"threads\": %zu,\n"
        "  \"reps\": %d,\n"
        "  \"seed_wall_ms\": %.4f,\n"
        "  \"rtgs_wall_ms\": %.4f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"seed_cpu_ms\": %.4f,\n"
        "  \"rtgs_cpu_ms\": %.4f,\n"
        "  \"cpu_speedup\": %.3f,\n"
        "  \"max_abs_channel_diff\": %.3g\n"
        "}\n",
        f.cloud.size(), globalPool().size() + 1, reps, seed_wall,
        rtgs_wall, speedup, seed_cpu, rtgs_cpu, cpu_speedup, diff);
    std::fclose(out);

    std::printf("\n== forward pass: seed serial vs parallel SoA ==\n");
    std::printf("seed  %.3f ms wall / %.3f ms cpu\n", seed_wall, seed_cpu);
    std::printf("rtgs  %.3f ms wall / %.3f ms cpu\n", rtgs_wall, rtgs_cpu);
    std::printf("speedup %.2fx wall, %.2fx cpu; max channel diff %.3g\n",
                speedup, cpu_speedup, diff);
    std::printf("wrote %s\n", path);

    if (diff > 1e-6) {
        std::fprintf(stderr,
                     "FAIL: image mismatch above 1e-6 (%.3g)\n", diff);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return writeForwardComparison();
}
