/**
 * @file
 * google-benchmark microbenchmarks of the rasterizer kernels
 * (projection, tile intersection, depth sort, forward rasterisation,
 * backward pass) across scene sizes — the per-kernel costs behind
 * every harness in this directory.
 */

#include <benchmark/benchmark.h>

#include "data/scene.hh"
#include "gs/render_pipeline.hh"

namespace
{

using namespace rtgs;

struct Fixture
{
    gs::GaussianCloud cloud;
    Camera camera;
    gs::RenderSettings settings;

    explicit Fixture(double spacing)
    {
        data::SceneConfig cfg;
        cfg.surfelSpacing = static_cast<Real>(spacing);
        cloud = data::buildScene(cfg);
        camera = Camera(Intrinsics::fromFov(1.3f, 320, 240),
                        SE3::lookAt({1.0f, -0.3f, 0.4f}, {0, 0, 0}));
    }
};

Fixture &
fixtureFor(double spacing)
{
    static Fixture coarse(0.35);
    static Fixture medium(0.22);
    static Fixture fine(0.15);
    if (spacing > 0.3)
        return coarse;
    if (spacing > 0.18)
        return medium;
    return fine;
}

double
spacingForRange(i64 arg)
{
    return arg == 0 ? 0.35 : arg == 1 ? 0.22 : 0.15;
}

void
BM_Projection(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    for (auto _ : state) {
        auto proj = gs::projectGaussians(f.cloud, f.camera, f.settings);
        benchmark::DoNotOptimize(proj.items.data());
    }
    state.counters["gaussians"] = static_cast<double>(f.cloud.size());
}

void
BM_TileIntersection(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    auto proj = gs::projectGaussians(f.cloud, f.camera, f.settings);
    gs::TileGrid grid(320, 240, f.settings.tileSize);
    for (auto _ : state) {
        auto bins = gs::intersectTiles(proj, grid);
        benchmark::DoNotOptimize(bins.lists.data());
    }
}

void
BM_DepthSort(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    auto proj = gs::projectGaussians(f.cloud, f.camera, f.settings);
    gs::TileGrid grid(320, 240, f.settings.tileSize);
    auto bins = gs::intersectTiles(proj, grid);
    for (auto _ : state) {
        auto copy = bins;
        gs::sortTilesByDepth(copy, proj);
        benchmark::DoNotOptimize(copy.lists.data());
    }
}

void
BM_ForwardRaster(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    gs::RenderPipeline pipe(f.settings);
    for (auto _ : state) {
        auto ctx = pipe.forward(f.cloud, f.camera);
        benchmark::DoNotOptimize(ctx.result.image.data());
    }
}

void
BM_Backward(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    gs::RenderPipeline pipe(f.settings);
    auto ctx = pipe.forward(f.cloud, f.camera);
    ImageRGB adj(320, 240, {0.3f, -0.2f, 0.1f});
    for (auto _ : state) {
        auto back = pipe.backward(f.cloud, ctx, adj, nullptr, true);
        benchmark::DoNotOptimize(back.grads.dPositions.data());
    }
}

BENCHMARK(BM_Projection)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TileIntersection)->DenseRange(0, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DepthSort)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ForwardRaster)->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Backward)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
