/**
 * @file
 * google-benchmark microbenchmarks of the rasterizer kernels
 * (projection, tile intersection, depth sort, forward rasterisation,
 * backward pass) across scene sizes — the per-kernel costs behind
 * every harness in this directory.
 *
 * After the registered benchmarks run, main() times the seed's serial
 * AoS forward path (gs/reference.hh) against the parallel SoA pipeline
 * head-to-head, checks the rendered images agree to 1e-6 per channel,
 * and writes the result to BENCH_micro_rasterizer.json (override the
 * path with RTGS_BENCH_JSON) so the perf trajectory is recorded in CI.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <vector>

#include "common/cpu_features.hh"
#include "common/thread_pool.hh"
#include "data/scene.hh"
#include "gs/reference.hh"
#include "gs/render_pipeline.hh"
#include "gs/row_kernels.hh"

namespace
{

using namespace rtgs;

struct Fixture
{
    gs::GaussianCloud cloud;
    Camera camera;
    gs::RenderSettings settings;

    explicit Fixture(double spacing)
    {
        data::SceneConfig cfg;
        cfg.surfelSpacing = static_cast<Real>(spacing);
        cloud = data::buildScene(cfg);
        camera = Camera(Intrinsics::fromFov(1.3f, 320, 240),
                        SE3::lookAt({1.0f, -0.3f, 0.4f}, {0, 0, 0}));
    }
};

Fixture &
fixtureFor(double spacing)
{
    static Fixture coarse(0.35);
    static Fixture medium(0.22);
    static Fixture fine(0.15);
    if (spacing > 0.3)
        return coarse;
    if (spacing > 0.18)
        return medium;
    return fine;
}

double
spacingForRange(i64 arg)
{
    return arg == 0 ? 0.35 : arg == 1 ? 0.22 : 0.15;
}

void
BM_Projection(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    for (auto _ : state) {
        auto proj = gs::projectGaussians(f.cloud, f.camera, f.settings);
        benchmark::DoNotOptimize(proj.items.data());
    }
    state.counters["gaussians"] = static_cast<double>(f.cloud.size());
}

void
BM_TileIntersection(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    auto proj = gs::projectGaussians(f.cloud, f.camera, f.settings);
    gs::TileGrid grid(320, 240, f.settings.tileSize);
    for (auto _ : state) {
        auto bins = gs::intersectTiles(proj, grid);
        benchmark::DoNotOptimize(bins.indices.data());
    }
}

void
BM_DepthSort(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    auto proj = gs::projectGaussians(f.cloud, f.camera, f.settings);
    gs::TileGrid grid(320, 240, f.settings.tileSize);
    auto bins = gs::intersectTiles(proj, grid);
    for (auto _ : state) {
        auto copy = bins;
        gs::sortTilesByDepth(copy, proj);
        benchmark::DoNotOptimize(copy.indices.data());
    }
}

void
BM_ForwardRaster(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    gs::RenderPipeline pipe(f.settings);
    for (auto _ : state) {
        auto ctx = pipe.forward(f.cloud, f.camera);
        benchmark::DoNotOptimize(ctx.result.image.data());
    }
}

void
BM_ForwardRasterSeed(benchmark::State &state)
{
    // The seed's serial AoS path, kept in gs/reference.hh.
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    for (auto _ : state) {
        auto ctx = gs::forwardReference(f.cloud, f.camera, f.settings);
        benchmark::DoNotOptimize(ctx.result.image.data());
    }
}

void
BM_Backward(benchmark::State &state)
{
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    gs::RenderPipeline pipe(f.settings);
    auto ctx = pipe.forward(f.cloud, f.camera);
    ImageRGB adj(320, 240, {0.3f, -0.2f, 0.1f});
    gs::BackwardResult back;
    for (auto _ : state) {
        pipe.backward(f.cloud, ctx, adj, nullptr, true, back);
        benchmark::DoNotOptimize(back.grads.dPositions.data());
    }
}

void
BM_BackwardSeed(benchmark::State &state)
{
    // The seed's serial pixel-major walk, kept in gs/backward.hh as the
    // golden reference.
    Fixture &f = fixtureFor(spacingForRange(state.range(0)));
    gs::RenderPipeline pipe(f.settings);
    auto ctx = pipe.forward(f.cloud, f.camera);
    ImageRGB adj(320, 240, {0.3f, -0.2f, 0.1f});
    for (auto _ : state) {
        auto back = gs::backwardFull(f.cloud, ctx.projected, ctx.bins,
                                     ctx.grid, f.settings, ctx.result,
                                     f.camera, adj, nullptr, true);
        benchmark::DoNotOptimize(back.grads.dPositions.data());
    }
}

BENCHMARK(BM_Projection)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TileIntersection)->DenseRange(0, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DepthSort)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ForwardRaster)->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ForwardRasterSeed)->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Backward)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BackwardSeed)->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------
// Seed-vs-RTGS head-to-head, written to BENCH_micro_rasterizer.json.
// ------------------------------------------------------------------

double
maxChannelDiff(const ImageRGB &a, const ImageRGB &b)
{
    double m = 0;
    for (size_t i = 0; i < a.pixelCount(); ++i) {
        m = std::max(m, std::abs(double(a[i].x) - double(b[i].x)));
        m = std::max(m, std::abs(double(a[i].y) - double(b[i].y)));
        m = std::max(m, std::abs(double(a[i].z) - double(b[i].z)));
    }
    return m;
}

/**
 * Min-of-reps wall and CPU time of fn, in milliseconds. The minimum is
 * robust against preemption on loaded shared machines.
 */
template <typename Fn>
void
timeMs(Fn &&fn, int reps, double &wall_ms, double &cpu_ms)
{
    wall_ms = 1e300;
    cpu_ms = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto w0 = std::chrono::steady_clock::now();
        std::clock_t c0 = std::clock();
        fn();
        std::clock_t c1 = std::clock();
        auto w1 = std::chrono::steady_clock::now();
        wall_ms = std::min(
            wall_ms, std::chrono::duration<double, std::milli>(w1 - w0)
                         .count());
        cpu_ms = std::min(cpu_ms, 1000.0 * double(c1 - c0) /
                                      double(CLOCKS_PER_SEC));
    }
}

/**
 * Forward-row-kernel ladder timings (ISSUE 7 acceptance): drive each
 * rung's forwardRow function pointer over an identical synthetic
 * fragment stream — one wide low-opacity splat per slot swept across a
 * 16-row x 256-px pixel block, every fragment blending — so the
 * measurement isolates the per-fragment arithmetic (exp + blend
 * recurrence) from tile scheduling, binning and projection. The
 * fast/fastest_approx rungs must beat precise by >= 1.5x wall-clock
 * when the AVX2 dispatch path is active; on scalar-only hosts the
 * numbers are still recorded but the gate is skipped (the scalar
 * rungs differ only in exp flavour, not in width).
 */
struct LadderTimings
{
    double precise_ms = 0, fast_ms = 0, approx_ms = 0;
    double fast_speedup = 0, approx_speedup = 0;
    const char *level = "";
    const char *fast_name = "";
    const char *approx_name = "";
};

LadderTimings
timeRowKernels(int reps)
{
    constexpr u32 kW = 256;       // pixels per row
    constexpr u32 kRows = 16;     // rows per pass (one tall tile)
    constexpr u32 kSplats = 96;   // fragment stream depth per pixel
    const size_t n_px = size_t(kW) * kRows;

    // One splat per slot: broad (cxx tiny, so every pixel's power stays
    // in (-0.1, 0]) and faint (alpha ~ 0.05, so transmittance survives
    // all 96 slots above the early-termination threshold).
    std::vector<gs::HotSplat> splats(kSplats);
    for (u32 s = 0; s < kSplats; ++s) {
        gs::HotSplat &g = splats[s];
        g.mx = Real(kW) / 2 + Real(s % 7) - 3;
        g.my = Real(kRows) / 2;
        g.cxx = Real(1e-5);
        g.cxy = Real(1e-6);
        g.cyy = Real(2e-4);
        g.powerSkip = Real(-30);
        g.opacity = Real(0.05) + Real(0.002) * Real(s % 5);
        g.r = Real(0.2) + Real(0.01) * Real(s % 11);
        g.g = Real(0.5);
        g.b = Real(0.7);
        g.depth = Real(2) + Real(0.01) * Real(s);
    }

    std::vector<Real> T(n_px), r(n_px), gch(n_px), b(n_px), d(n_px);
    std::vector<u32> blended(n_px), term(n_px);
    std::vector<Real> scratch(2 * kW);
    const gs::RowKernelCtx ctx{Real(1) / 255, Real(0.99), Real(1e-4)};

    auto pass = [&](const gs::RowKernels &kern) {
        std::fill(T.begin(), T.end(), Real(1));
        std::fill(r.begin(), r.end(), Real(0));
        std::fill(gch.begin(), gch.end(), Real(0));
        std::fill(b.begin(), b.end(), Real(0));
        std::fill(d.begin(), d.end(), Real(0));
        std::fill(blended.begin(), blended.end(), 0u);
        std::fill(term.begin(), term.end(), gs::kRowNotTerminated);
        u32 terminated = 0;
        for (u32 s = 0; s < kSplats; ++s) {
            const gs::HotSplat &g = splats[s];
            for (u32 row = 0; row < kRows; ++row) {
                const size_t off = size_t(row) * kW;
                const Real dy = (Real(row) + Real(0.5)) - g.my;
                gs::ForwardRowState px{T.data() + off, r.data() + off,
                                       gch.data() + off, b.data() + off,
                                       d.data() + off,
                                       blended.data() + off,
                                       term.data() + off};
                terminated += kern.forwardRow(g, dy, 0, kW, s, ctx, px,
                                              scratch.data());
            }
        }
        benchmark::DoNotOptimize(terminated);
        benchmark::DoNotOptimize(r.data());
    };

    const SimdLevel level = activeSimdLevel();
    const gs::RowKernels &precise =
        gs::selectRowKernels(gs::PipelinePreset::Precise, level);
    const gs::RowKernels &fast =
        gs::selectRowKernels(gs::PipelinePreset::Fast, level);
    const gs::RowKernels &approx =
        gs::selectRowKernels(gs::PipelinePreset::FastestApprox, level);

    LadderTimings lad;
    lad.level = simdLevelName(level);
    lad.fast_name = fast.name;
    lad.approx_name = approx.name;
    double cpu; // CPU time tracks wall on this single-thread workload
    timeMs([&] { pass(precise); }, reps, lad.precise_ms, cpu);
    timeMs([&] { pass(fast); }, reps, lad.fast_ms, cpu);
    timeMs([&] { pass(approx); }, reps, lad.approx_ms, cpu);
    lad.fast_speedup = lad.precise_ms / lad.fast_ms;
    lad.approx_speedup = lad.precise_ms / lad.approx_ms;
    return lad;
}

/**
 * Double-precision ground-truth 2D gradients: the reference pixel-major
 * walk with float blend decisions (alpha/gval computed exactly like the
 * forward pass, so the blended set is identical) but double-precision
 * transmittance/rear-accumulation recurrences and gradient sums. Both
 * float kernels are compared against this to show their mutual
 * divergence is the float rounding envelope itself, not an error of
 * either kernel.
 */
struct Grad2D64
{
    std::vector<double> mx, my, cxx, cxy, cyy, r, g, b, op, dep;

    explicit Grad2D64(size_t n)
        : mx(n), my(n), cxx(n), cxy(n), cyy(n), r(n), g(n), b(n),
          op(n), dep(n)
    {
    }
};

Grad2D64
backwardGroundTruth64(const gs::ForwardContext &ctx,
                      const gs::RenderSettings &settings,
                      const ImageRGB &dl_dcolor, const ImageF &dl_ddepth,
                      size_t cloud_size)
{
    Grad2D64 gt(cloud_size);
    for (u32 tile = 0; tile < ctx.grid.tileCount(); ++tile) {
        if (ctx.bins.count(tile) == 0)
            continue;
        u32 x0, y0, x1, y1;
        ctx.grid.tileBounds(tile, x0, y0, x1, y1);
        const std::vector<gs::HotSplat> &splats =
            gs::gatherTileSplats(ctx.projected.soa, ctx.bins, tile);
        const u32 *ids = ctx.bins.tileData(tile);

        struct Frag
        {
            u32 slot;
            float alpha, gval;
            double dx, dy, tBefore;
            bool clamped;
        };
        std::vector<Frag> frags;
        for (u32 py = y0; py < y1; ++py) {
            for (u32 px = x0; px < x1; ++px) {
                Vec3f dl_dc = dl_dcolor.at(px, py);
                double dld = dl_ddepth.at(px, py);
                if (dl_dc.squaredNorm() == 0 && dld == 0)
                    continue;
                frags.clear();
                double T = 1;
                // Float twin of T drives every *decision* (here, early
                // termination) so the blended set is exactly the
                // forward pass's; only the arithmetic runs in double.
                Real t_dec = 1;
                for (u32 s = 0; s < splats.size(); ++s) {
                    const gs::HotSplat &g = splats[s];
                    // Float decisions, identical to the production
                    // kernels' (and the forward pass's) operations.
                    Real dxf = (Real(px) + Real(0.5)) - g.mx;
                    Real dyf = (Real(py) + Real(0.5)) - g.my;
                    Real power = Real(-0.5) *
                        (g.cxx * dxf * dxf + Real(2) * g.cxy * dxf * dyf +
                         g.cyy * dyf * dyf);
                    if (power > 0 || power < g.powerSkip)
                        continue;
                    Real gval = std::exp(power);
                    Real raw = g.opacity * gval;
                    bool clamped = raw > settings.alphaMax;
                    Real alpha = clamped ? settings.alphaMax : raw;
                    if (alpha < settings.alphaMin)
                        continue;
                    frags.push_back({s, alpha, gval, double(dxf),
                                     double(dyf), T, clamped});
                    T *= 1.0 - double(alpha);
                    t_dec *= 1 - alpha;
                    if (t_dec < settings.transmittanceEps)
                        break;
                }
                double t_final = T;
                double bg_dot = double(settings.background.x) * dl_dc.x +
                                double(settings.background.y) * dl_dc.y +
                                double(settings.background.z) * dl_dc.z;
                double aR = 0, aG = 0, aB = 0, aD = 0;
                for (size_t j = frags.size(); j-- > 0;) {
                    const Frag &f = frags[j];
                    const gs::HotSplat &g = splats[f.slot];
                    const u32 gid = ids[f.slot];
                    double a = f.alpha, tb = f.tBefore;
                    double w = a * tb;
                    gt.r[gid] += dl_dc.x * w;
                    gt.g[gid] += dl_dc.y * w;
                    gt.b[gid] += dl_dc.z * w;
                    gt.dep[gid] += dld * w;
                    double da = ((double(g.r) - aR) * dl_dc.x +
                                 (double(g.g) - aG) * dl_dc.y +
                                 (double(g.b) - aB) * dl_dc.z) * tb +
                                (double(g.depth) - aD) * dld * tb;
                    da += (-t_final / (1.0 - a)) * bg_dot;
                    aR = double(g.r) * a + aR * (1.0 - a);
                    aG = double(g.g) * a + aG * (1.0 - a);
                    aB = double(g.b) * a + aB * (1.0 - a);
                    aD = double(g.depth) * a + aD * (1.0 - a);
                    if (f.clamped)
                        continue;
                    gt.op[gid] += double(f.gval) * da;
                    double dp = a * da;
                    double cd_x = double(g.cxx) * f.dx + double(g.cxy) * f.dy;
                    double cd_y = double(g.cxy) * f.dx + double(g.cyy) * f.dy;
                    gt.mx[gid] += cd_x * dp;
                    gt.my[gid] += cd_y * dp;
                    gt.cxx[gid] += -0.5 * f.dx * f.dx * dp;
                    gt.cxy[gid] += -f.dx * f.dy * dp;
                    gt.cyy[gid] += -0.5 * f.dy * f.dy * dp;
                }
            }
        }
    }
    return gt;
}

/** Scale-relative distance of a float grad2d from the f64 ground truth. */
double
grad2dVsGroundTruth(const gs::Gradient2DBuffers &g2, const Grad2D64 &gt)
{
    double worst = 0;
    auto fold = [&](auto getf, const std::vector<double> &ref) {
        double diff = 0, scale = 1;
        for (size_t k = 0; k < ref.size(); ++k) {
            diff = std::max(diff, std::abs(getf(k) - ref[k]));
            scale = std::max(scale, std::abs(ref[k]));
        }
        worst = std::max(worst, diff / scale);
    };
    fold([&](size_t k) { return double(g2.dMean2d[k].x); }, gt.mx);
    fold([&](size_t k) { return double(g2.dMean2d[k].y); }, gt.my);
    fold([&](size_t k) { return double(g2.dConic[k].xx); }, gt.cxx);
    fold([&](size_t k) { return double(g2.dConic[k].xy); }, gt.cxy);
    fold([&](size_t k) { return double(g2.dConic[k].yy); }, gt.cyy);
    fold([&](size_t k) { return double(g2.dColor[k].x); }, gt.r);
    fold([&](size_t k) { return double(g2.dColor[k].y); }, gt.g);
    fold([&](size_t k) { return double(g2.dColor[k].z); }, gt.b);
    fold([&](size_t k) { return double(g2.dOpacityAct[k]); }, gt.op);
    fold([&](size_t k) { return double(g2.dDepth[k]); }, gt.dep);
    return worst;
}

/**
 * Largest per-class gradient difference between two backward results,
 * normalised by each class's own magnitude scale (max(1, max |ref|)) —
 * the gradient analogue of maxChannelDiff, where image channels are
 * already order-one. The splat-major kernel recovers per-fragment
 * transmittance by division, an ulp-level perturbation relative to the
 * magnitudes summed, so this scale-relative metric is the one with a
 * meaningful floating-point bound.
 */
double
maxGradDiffRel(const gs::BackwardResult &a, const gs::BackwardResult &b)
{
    double worst = 0;
    auto fold = [&](auto get, size_t n) {
        double diff = 0, scale = 1;
        for (size_t k = 0; k < n; ++k) {
            double av = get(a, k), bv = get(b, k);
            diff = std::max(diff, std::abs(av - bv));
            scale = std::max(scale, std::abs(bv));
        }
        worst = std::max(worst, diff / scale);
    };
    size_t n = a.grads.size();
    for (int c = 0; c < 3; ++c) {
        fold([c](const gs::BackwardResult &r, size_t k) {
            return double(r.grads.dPositions[k][c]); }, n);
        fold([c](const gs::BackwardResult &r, size_t k) {
            return double(r.grads.dLogScales[k][c]); }, n);
        fold([c](const gs::BackwardResult &r, size_t k) {
            return double(r.grads.dShCoeffs[k][c]); }, n);
    }
    fold([](const gs::BackwardResult &r, size_t k) {
        return double(r.grads.dOpacityLogits[k]); }, n);
    fold([](const gs::BackwardResult &r, size_t k) {
        return double(r.poseGrad[k]); }, 6);
    return worst;
}

int
writeComparison()
{
    const char *path = std::getenv("RTGS_BENCH_JSON");
    if (!path)
        path = "BENCH_micro_rasterizer.json";
    int reps = 15;
    if (const char *r = std::getenv("RTGS_BENCH_COMPARE_REPS"))
        reps = std::max(1, std::atoi(r));

    Fixture &f = fixtureFor(0.22);
    gs::RenderPipeline pipe(f.settings);

    // Correctness gate: the refactored pipeline must render the same
    // image as the seed path (acceptance: <= 1e-6 per channel).
    auto seed_ctx = gs::forwardReference(f.cloud, f.camera, f.settings);
    auto rtgs_ctx = pipe.forward(f.cloud, f.camera);
    double diff =
        maxChannelDiff(seed_ctx.result.image, rtgs_ctx.result.image);

    double seed_wall, seed_cpu, rtgs_wall, rtgs_cpu;
    timeMs(
        [&] {
            auto ctx = gs::forwardReference(f.cloud, f.camera, f.settings);
            benchmark::DoNotOptimize(ctx.result.image.data());
        },
        reps, seed_wall, seed_cpu);
    timeMs(
        [&] {
            auto ctx = pipe.forward(f.cloud, f.camera);
            benchmark::DoNotOptimize(ctx.result.image.data());
        },
        reps, rtgs_wall, rtgs_cpu);

    double speedup = seed_wall / rtgs_wall;
    double cpu_speedup = seed_cpu / rtgs_cpu;

    // Backward head-to-head over the same forward context: the seed's
    // serial pixel-major walk vs the splat-major scheduler, colour and
    // depth adjoints both active. The gradient gate is scale-relative
    // (see maxGradDiffRel).
    ImageRGB adj(320, 240, {0.3f, -0.2f, 0.1f});
    ImageF adj_depth(320, 240, Real(0.05));
    gs::BackwardResult seed_back = gs::backwardFull(
        f.cloud, rtgs_ctx.projected, rtgs_ctx.bins, rtgs_ctx.grid,
        f.settings, rtgs_ctx.result, f.camera, adj, &adj_depth, true);
    gs::BackwardResult rtgs_back =
        pipe.backward(f.cloud, rtgs_ctx, adj, &adj_depth, true);
    double grad_diff = maxGradDiffRel(rtgs_back, seed_back);

    // Both float kernels against the double-precision ground truth:
    // their mutual divergence is bounded by the float rounding envelope
    // itself (each pixel's transmittance recurrence accumulates ~1 ulp
    // per blended fragment, ~22 deep on this fixture), so neither is
    // "wrong" — and the splat-major kernel must stay as close to the
    // truth as the reference is.
    Grad2D64 gt = backwardGroundTruth64(rtgs_ctx, f.settings, adj,
                                        adj_depth, f.cloud.size());
    double seed_vs_gt = grad2dVsGroundTruth(seed_back.grad2d, gt);
    double rtgs_vs_gt = grad2dVsGroundTruth(rtgs_back.grad2d, gt);

    double bseed_wall, bseed_cpu, brtgs_wall, brtgs_cpu;
    timeMs(
        [&] {
            auto back = gs::backwardFull(
                f.cloud, rtgs_ctx.projected, rtgs_ctx.bins, rtgs_ctx.grid,
                f.settings, rtgs_ctx.result, f.camera, adj, &adj_depth,
                true);
            benchmark::DoNotOptimize(back.grads.dPositions.data());
        },
        reps, bseed_wall, bseed_cpu);
    gs::BackwardResult reused; // steady-state: scratch + result reuse
    timeMs(
        [&] {
            pipe.backward(f.cloud, rtgs_ctx, adj, &adj_depth, true,
                          reused);
            benchmark::DoNotOptimize(reused.grads.dPositions.data());
        },
        reps, brtgs_wall, brtgs_cpu);

    double backward_speedup = bseed_wall / brtgs_wall;
    double backward_cpu_speedup = bseed_cpu / brtgs_cpu;

    LadderTimings lad = timeRowKernels(reps);

    std::FILE *out = std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
    }
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"micro_rasterizer\",\n"
        "  \"image\": \"320x240\",\n"
        "  \"gaussians\": %zu,\n"
        "  \"threads\": %zu,\n"
        "  \"reps\": %d,\n"
        "  \"seed_wall_ms\": %.4f,\n"
        "  \"rtgs_wall_ms\": %.4f,\n"
        "  \"speedup\": %.3f,\n"
        "  \"seed_cpu_ms\": %.4f,\n"
        "  \"rtgs_cpu_ms\": %.4f,\n"
        "  \"cpu_speedup\": %.3f,\n"
        "  \"max_abs_channel_diff\": %.3g,\n"
        "  \"backward_seed_wall_ms\": %.4f,\n"
        "  \"backward_rtgs_wall_ms\": %.4f,\n"
        "  \"backward_speedup\": %.3f,\n"
        "  \"backward_seed_cpu_ms\": %.4f,\n"
        "  \"backward_rtgs_cpu_ms\": %.4f,\n"
        "  \"backward_cpu_speedup\": %.3f,\n"
        "  \"backward_max_rel_grad_diff\": %.3g,\n"
        "  \"backward_seed_vs_f64_truth\": %.3g,\n"
        "  \"backward_rtgs_vs_f64_truth\": %.3g,\n"
        "  \"simd_level\": \"%s\",\n"
        "  \"rowkernel_fast_name\": \"%s\",\n"
        "  \"rowkernel_fastest_approx_name\": \"%s\",\n"
        "  \"rowkernel_precise_ms\": %.4f,\n"
        "  \"rowkernel_fast_ms\": %.4f,\n"
        "  \"rowkernel_fastest_approx_ms\": %.4f,\n"
        "  \"rowkernel_fast_speedup\": %.3f,\n"
        "  \"rowkernel_fastest_approx_speedup\": %.3f\n"
        "}\n",
        f.cloud.size(), globalPool().size() + 1, reps, seed_wall,
        rtgs_wall, speedup, seed_cpu, rtgs_cpu, cpu_speedup, diff,
        bseed_wall, brtgs_wall, backward_speedup, bseed_cpu, brtgs_cpu,
        backward_cpu_speedup, grad_diff, seed_vs_gt, rtgs_vs_gt,
        lad.level, lad.fast_name, lad.approx_name, lad.precise_ms,
        lad.fast_ms, lad.approx_ms, lad.fast_speedup,
        lad.approx_speedup);
    std::fclose(out);

    std::printf("\n== forward pass: seed serial vs parallel SoA ==\n");
    std::printf("seed  %.3f ms wall / %.3f ms cpu\n", seed_wall, seed_cpu);
    std::printf("rtgs  %.3f ms wall / %.3f ms cpu\n", rtgs_wall, rtgs_cpu);
    std::printf("speedup %.2fx wall, %.2fx cpu; max channel diff %.3g\n",
                speedup, cpu_speedup, diff);
    std::printf("\n== backward pass: seed pixel-major vs splat-major ==\n");
    std::printf("seed  %.3f ms wall / %.3f ms cpu\n", bseed_wall,
                bseed_cpu);
    std::printf("rtgs  %.3f ms wall / %.3f ms cpu\n", brtgs_wall,
                brtgs_cpu);
    std::printf("speedup %.2fx wall, %.2fx cpu; "
                "max scale-relative grad diff %.3g\n",
                backward_speedup, backward_cpu_speedup, grad_diff);
    std::printf("vs f64 ground truth: seed %.3g, rtgs %.3g\n",
                seed_vs_gt, rtgs_vs_gt);
    std::printf("\n== forward row-kernel ladder (%s dispatch) ==\n",
                lad.level);
    std::printf("precise        %.3f ms  (scalar-exact)\n",
                lad.precise_ms);
    std::printf("fast           %.3f ms  (%s)  %.2fx\n", lad.fast_ms,
                lad.fast_name, lad.fast_speedup);
    std::printf("fastest_approx %.3f ms  (%s)  %.2fx\n", lad.approx_ms,
                lad.approx_name, lad.approx_speedup);
    std::printf("wrote %s\n", path);

    if (diff > 1e-6) {
        std::fprintf(stderr,
                     "FAIL: image mismatch above 1e-6 (%.3g)\n", diff);
        return 1;
    }
    // Documented tolerance (see src/gs/README.md): the splat-major
    // kernel recovers per-fragment transmittance by division instead of
    // replaying the forward float products, so it cannot be bit-equal
    // to the reference; each kernel drifts ~1 ulp per blended fragment
    // (~22 deep here) from the real-valued gradient, which the
    // *_vs_f64_truth fields quantify. The gate bounds the divergence at
    // 2e-5 of each gradient class's scale, ~4x the measured value, and
    // additionally requires the new kernel to stay as close to the f64
    // ground truth as the reference walk is (within 2x).
    if (grad_diff > 2e-5) {
        std::fprintf(stderr,
                     "FAIL: backward gradient mismatch above 2e-5 "
                     "scale-relative (%.3g)\n", grad_diff);
        return 1;
    }
    if (rtgs_vs_gt > 2 * seed_vs_gt + 1e-7) {
        std::fprintf(stderr,
                     "FAIL: splat-major kernel drifts further from f64 "
                     "ground truth (%.3g) than the reference (%.3g)\n",
                     rtgs_vs_gt, seed_vs_gt);
        return 1;
    }
    // Ladder acceptance (ISSUE 7): the SIMD rungs must beat the scalar
    // precise kernel by >= 1.5x wall-clock. Only meaningful when AVX2
    // actually dispatched — on scalar-only hosts the rungs share width
    // and the numbers are recorded without a gate.
    if (activeSimdLevel() >= SimdLevel::Avx2 &&
        (lad.fast_speedup < 1.5 || lad.approx_speedup < 1.5)) {
        std::fprintf(stderr,
                     "FAIL: row-kernel ladder below 1.5x (fast %.2fx, "
                     "fastest_approx %.2fx)\n",
                     lad.fast_speedup, lad.approx_speedup);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return writeComparison();
}
