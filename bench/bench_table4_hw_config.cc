/**
 * @file
 * Regenerates Table 4: the RTGS plug-in architecture configuration.
 * Static by construction — this harness prints the configuration the
 * timing models actually use, so drift between the two is impossible.
 */

#include <cstdio>

#include "common/table.hh"
#include "hw/config.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::hw;

    std::printf("== Table 4: RTGS architecture configuration ==\n\n");
    RtgsHwConfig cfg = RtgsHwConfig::paper();

    TablePrinter top({"parameter", "value"});
    top.addRow({"Technology node",
                std::to_string(cfg.technologyNm) + " nm"});
    top.addRow({"Operating freq.",
                TablePrinter::num(cfg.clockGhz * 1000, 0) + " MHz"});
    top.addRow({"Power", TablePrinter::num(cfg.powerWatts) + " W"});
    top.addRow({"Area", TablePrinter::num(cfg.areaMm2) + " mm^2"});
    top.print();

    TablePrinter compute({"compute resource", "configuration"});
    compute.setTitle("\nComputation resources:");
    compute.addRow({"RE x " + std::to_string(cfg.reCount),
                    std::to_string(cfg.rcPerRe) + " RCs & " +
                        std::to_string(cfg.rbcPerRe) + " RBCs per RE"});
    compute.addRow({"WSU x " + std::to_string(cfg.reCount),
                    "pairwise scheduling + streaming"});
    compute.addRow({"PE x " + std::to_string(cfg.peCount),
                    "1 PBC per PE, " +
                        std::to_string(cfg.gaussiansPerPe) +
                        " Gaussians in flight"});
    compute.addRow({"GMU x " + std::to_string(cfg.gmuCount),
                    "Benes network + merge tree"});
    compute.print();

    TablePrinter mem({"memory", "size"});
    mem.setTitle("\nMemory allocation:");
    mem.addRow({"Gaussian Cache",
                std::to_string(cfg.gaussianCacheKb) + " KB"});
    mem.addRow({"Pixel Buffer",
                std::to_string(cfg.pixelBufferKb) + " KB"});
    mem.addRow({"2D Buffer", std::to_string(cfg.twoDBufferKb) + " KB"});
    mem.addRow({"R&B Buffer", std::to_string(cfg.rbBufferKb) + " KB"});
    mem.addRow({"Stage Buffer",
                std::to_string(cfg.stageBufferKb) + " KB"});
    mem.addRow({"3D Buffer", std::to_string(cfg.threeDBufferKb) + " KB"});
    mem.addRow({"Output Buffer",
                std::to_string(cfg.outputBufferKb) + " KB"});
    mem.addRow({"WSU Buffer", std::to_string(cfg.wsuBufferKb) + " KB"});
    mem.addRow({"Total SRAM", std::to_string(cfg.totalSramKb()) + " KB"});
    mem.addRow({"Shared L2 Cache",
                std::to_string(cfg.l2CacheMb) + " MB"});
    mem.print();

    TablePrinter lat({"pipeline unit", "latency (cycles)"});
    lat.setTitle("\nUnit latencies (Sec. 5.2):");
    lat.addRow({"alpha computing",
                std::to_string(cfg.alphaComputeCycles)});
    lat.addRow({"alpha blending", std::to_string(cfg.alphaBlendCycles)});
    lat.addRow({"alpha gradient (recompute)",
                std::to_string(cfg.alphaGradCyclesNoReuse)});
    lat.addRow({"alpha gradient (R&B reuse)",
                std::to_string(cfg.alphaGradCyclesReuse)});
    lat.addRow({"cov/pos gradient",
                std::to_string(cfg.covPosGradCycles)});
    lat.print();
    return 0;
}
