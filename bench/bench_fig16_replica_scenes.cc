/**
 * @file
 * Regenerates Fig. 16: per-scene Replica tracking FPS and peak
 * Gaussian memory for the RTX 3090 baseline, the GauSPU comparator,
 * and RTGS (SplaTAM-like pipeline).
 *
 * Expected shape: RTGS above GauSPU above the plain GPU in tracking
 * FPS on every scene (paper: 2.3x mean over GauSPU), with the lowest
 * peak memory of the three (paper: 1.3x reduction).
 */

#include "bench_util.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 16: per-scene Replica comparison "
                     "(SplaTAM-like on RTX 3090 model)");

    hw::SystemModel model = benchSystemModel(hw::GpuSpec::rtx3090());
    const char *scenes[] = {"R0", "R1", "R2", "Of0", "Of1", "Of2", "Of3"};

    TablePrinter table({"Scene", "3090 FPS", "GauSPU FPS", "Ours FPS",
                        "3090 Mem", "GauSPU Mem", "Ours Mem (MB)"});

    double fps_gain_acc = 0, mem_gain_acc = 0;
    for (const char *scene : scenes) {
        data::DatasetSpec spec = benchSpec(
            data::DatasetSpec::replicaScene(scene, benchScale()));

        data::SyntheticDataset ds_base(spec);
        core::RtgsSlamConfig base_cfg =
            benchConfig(slam::BaseAlgorithm::SplaTam);
        base_cfg.enablePruning = false;
        base_cfg.enableDownsampling = false;
        RunOutcome base = runSequence(ds_base, base_cfg);

        data::SyntheticDataset ds_ours(spec);
        RunOutcome ours = runSequence(
            ds_ours, benchConfig(slam::BaseAlgorithm::SplaTam));

        auto gpu = model.sequenceReport(base.traces,
                                        hw::SystemKind::GpuBaseline);
        auto gauspu = model.sequenceReport(base.traces,
                                           hw::SystemKind::GauSpu);
        auto rtgs_rep = model.sequenceReport(ours.traces,
                                             hw::SystemKind::RtgsFull);

        double mem_base = runtimeMemoryMb(base.peakBytes);
        double mem_gauspu = mem_base * 0.6; // GauSPU's reported saving
        double mem_ours = runtimeMemoryMb(ours.peakBytes);

        table.addRow({scene, TablePrinter::num(gpu.trackingFps(), 1),
                      TablePrinter::num(gauspu.trackingFps(), 1),
                      TablePrinter::num(rtgs_rep.trackingFps(), 1),
                      TablePrinter::num(mem_base, 2),
                      TablePrinter::num(mem_gauspu, 2),
                      TablePrinter::num(mem_ours, 2)});
        fps_gain_acc += rtgs_rep.trackingFps() / gauspu.trackingFps();
        mem_gain_acc += mem_gauspu / mem_ours;
    }
    table.print();

    std::printf("\nmean FPS gain over GauSPU: %.1fx   mean peak-memory "
                "reduction vs GauSPU: %.1fx\n",
                fps_gain_acc / 7.0, mem_gain_acc / 7.0);
    std::printf("\nShape check vs paper Fig. 16: Ours > GauSPU > RTX "
                "3090 in tracking FPS per scene\n(paper: 2.3x mean FPS "
                "gain, 1.3x memory reduction vs GauSPU).\n");
    return 0;
}
