/**
 * @file
 * Regenerates Fig. 6: the distribution of per-pixel workload
 * (Gaussians processed per pixel) across frames and across iterations
 * within one frame. Expected shape: distributions vary across frames
 * but are nearly identical between consecutive iterations of the same
 * frame (Observation 6) — the property the WSU exploits to reuse
 * scheduling decisions.
 */

#include <array>
#include <cmath>

#include "bench_util.hh"

#include "common/stats.hh"

namespace
{

using namespace rtgs;

/** Bucket shares of a per-pixel fragment-count image (percent). */
std::array<double, 4>
bucketShares(const Image<u32> &counts)
{
    std::array<double, 4> buckets{}; // <4, 4-16, 16-64, >=64
    for (size_t i = 0; i < counts.pixelCount(); ++i) {
        u32 v = counts[i];
        if (v < 4)
            buckets[0] += 1;
        else if (v < 16)
            buckets[1] += 1;
        else if (v < 64)
            buckets[2] += 1;
        else
            buckets[3] += 1;
    }
    for (auto &b : buckets)
        b = b / static_cast<double>(counts.pixelCount()) * 100.0;
    return buckets;
}

double
shareDistance(const std::array<double, 4> &a,
              const std::array<double, 4> &b)
{
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i)
        d += std::abs(a[i] - b[i]);
    return d / 2.0; // total variation distance in percent
}

} // namespace

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Fig. 6: per-pixel workload distribution across "
                     "frames and iterations");

    data::SyntheticDataset dataset(
        benchSpec(data::DatasetSpec::tumLike(benchScale())));
    core::RtgsSlamConfig cfg = benchConfig(slam::BaseAlgorithm::MonoGs);
    cfg.enablePruning = false;
    cfg.enableDownsampling = false;
    core::RtgsSlam rtgs(cfg, dataset.intrinsics());

    // Capture every tracking iteration's per-pixel workload image.
    std::vector<std::array<double, 4>> iter_shares;
    u32 current_frame = 0;
    std::vector<std::pair<u32, std::array<double, 4>>> all;
    rtgs.setExternalTrackHook(
        [&](const slam::TrackIterationContext &ctx) {
            all.emplace_back(current_frame,
                             bucketShares(ctx.forward->result.nContrib));
        });
    for (u32 f = 0; f < dataset.frameCount(); ++f) {
        current_frame = f;
        rtgs.processFrame(dataset.frame(f));
    }

    // (top) distribution evolution across frames (first iteration of
    // each frame).
    TablePrinter frames_table({"frame", "<4 frag %", "4-16 %", "16-64 %",
                               ">=64 %"});
    frames_table.setTitle("(top) workload distribution across frames");
    u32 seen = ~0u;
    for (const auto &[f, shares] : all) {
        if (f == seen)
            continue;
        seen = f;
        frames_table.addRow({std::to_string(f),
                             TablePrinter::num(shares[0], 1),
                             TablePrinter::num(shares[1], 1),
                             TablePrinter::num(shares[2], 1),
                             TablePrinter::num(shares[3], 1)});
    }
    frames_table.print();

    // (bottom) distribution across iterations within one mid frame.
    u32 mid = dataset.frameCount() / 2;
    TablePrinter iters_table({"iteration", "<4 frag %", "4-16 %",
                              "16-64 %", ">=64 %"});
    iters_table.setTitle("\n(bottom) iterations within frame " +
                         std::to_string(mid));
    std::vector<std::array<double, 4>> mid_shares;
    for (const auto &[f, shares] : all)
        if (f == mid)
            mid_shares.push_back(shares);
    for (size_t i = 0; i < mid_shares.size(); ++i) {
        iters_table.addRow({std::to_string(i),
                            TablePrinter::num(mid_shares[i][0], 1),
                            TablePrinter::num(mid_shares[i][1], 1),
                            TablePrinter::num(mid_shares[i][2], 1),
                            TablePrinter::num(mid_shares[i][3], 1)});
    }
    iters_table.print();

    // Quantify Observation 6: consecutive-iteration distance vs
    // cross-frame distance.
    RunningStat intra, inter;
    for (size_t i = 1; i < all.size(); ++i) {
        double d = shareDistance(all[i - 1].second, all[i].second);
        (all[i - 1].first == all[i].first ? intra : inter).add(d);
    }
    std::printf("\nmean distribution shift: consecutive iterations "
                "%.2f%%  vs  across frames %.2f%%\n",
                intra.mean(), inter.mean());
    std::printf("\nShape check vs paper Fig. 6: within-frame iteration "
                "distributions are nearly\nidentical while frames "
                "differ -> scheduling decisions can be reused.\n");
    return 0;
}
