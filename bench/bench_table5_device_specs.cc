/**
 * @file
 * Regenerates Table 5: device specifications of ONX, RTX 3090, GauSPU
 * and the RTGS plug-in, with DeepScaleTool-style 12 nm / 8 nm scaled
 * variants of the plug-in.
 */

#include <cstdio>

#include "common/table.hh"
#include "hw/energy.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::hw;

    std::printf("== Table 5: device specifications ==\n\n");

    TablePrinter table({"Device", "Technology", "SRAM", "Cores",
                        "Area (mm^2)", "Power (W)"});

    GpuSpec onx = GpuSpec::onx();
    table.addRow({onx.name, std::to_string(onx.technologyNm) + " nm",
                  TablePrinter::num(onx.sramMb, 0) + " MB",
                  std::to_string(onx.cudaCores) + " CUDA",
                  TablePrinter::num(onx.areaMm2, 0),
                  TablePrinter::num(onx.powerWatts, 0)});

    GpuSpec rtx = GpuSpec::rtx3090();
    table.addRow({rtx.name, std::to_string(rtx.technologyNm) + " nm",
                  TablePrinter::num(rtx.sramMb) + " MB",
                  std::to_string(rtx.cudaCores) + " CUDA",
                  TablePrinter::num(rtx.areaMm2, 0),
                  TablePrinter::num(rtx.powerWatts, 0)});

    GauSpuSpec gauspu = GauSpuSpec::paper();
    table.addRow({"GauSPU", std::to_string(gauspu.technologyNm) + " nm",
                  TablePrinter::num(gauspu.sramKb, 0) + " KB",
                  std::to_string(gauspu.reCount) + " REs/" +
                      std::to_string(gauspu.beCount) + " BEs",
                  TablePrinter::num(gauspu.areaMm2, 0),
                  TablePrinter::num(gauspu.powerWatts, 1)});

    RtgsHwConfig base = RtgsHwConfig::paper();
    for (u32 node : {28u, 12u, 8u}) {
        RtgsHwConfig c = TechScaling::scaleConfig(base, node);
        std::string name = node == 28
            ? "RTGS"
            : "RTGS-" + std::to_string(node) + "nm";
        table.addRow({name, std::to_string(node) + " nm",
                      std::to_string(c.totalSramKb()) + " KB",
                      std::to_string(c.reCount) + " REs/" +
                          std::to_string(c.peCount) + " PEs",
                      TablePrinter::num(c.areaMm2),
                      TablePrinter::num(c.powerWatts)});
    }
    table.print();

    std::printf("\nShape check vs paper Table 5: the plug-in uses less "
                "SRAM and fewer cores than GauSPU;\nat matched nodes it "
                "is smaller and lower-power than both GPUs.\n");
    return 0;
}
