/**
 * @file
 * Regenerates Table 2: the four base 3DGS-SLAM algorithms on the
 * Replica-like dataset evaluated on the ONX-class edge GPU model —
 * ATE, PSNR, tracking FPS, overall FPS and peak Gaussian memory.
 *
 * Expected shape (paper): SplaTAM slowest overall (maps every frame),
 * GS-SLAM/MonoGS moderate, Photo-SLAM fastest tracking (classical
 * geometric backend); all below 30 FPS real time.
 */

#include "bench_util.hh"

int
main()
{
    using namespace rtgs;
    using namespace rtgs::bench;

    printBenchHeader("Table 2: base 3DGS-SLAM algorithms on the edge "
                     "GPU (Replica-like)");

    TablePrinter table({"Algorithm", "ATE (cm)", "PSNR (dB)",
                        "Track FPS", "Overall FPS", "Peak Mem (MB)"});

    const slam::BaseAlgorithm algos[] = {
        slam::BaseAlgorithm::SplaTam, slam::BaseAlgorithm::GsSlam,
        slam::BaseAlgorithm::MonoGs, slam::BaseAlgorithm::PhotoSlam};

    hw::SystemModel model = benchSystemModel(hw::GpuSpec::onx());

    for (auto algo : algos) {
        data::SyntheticDataset dataset(
            benchSpec(data::DatasetSpec::replicaLike(benchScale())));
        core::RtgsSlamConfig cfg = benchConfig(algo);
        cfg.enablePruning = false;
        cfg.enableDownsampling = false;
        RunOutcome run = runSequence(dataset, cfg);

        auto report = model.sequenceReport(run.traces,
                                           hw::SystemKind::GpuBaseline);
        // Photo-SLAM tracks with the classical geometric backend; its
        // tracking cost on the GPU is a small fixed ICP solve.
        double track_fps = report.trackingFps();
        double overall_fps = report.fps();
        if (algo == slam::BaseAlgorithm::PhotoSlam) {
            // Classical feature/ICP tracking on the edge GPU takes
            // ~70 ms per frame at native scale (Photo-SLAM tracks at
            // 11.7-14.3 FPS in the paper's Table 2).
            double icp_s = 0.07;
            double mapping_s =
                report.totalSeconds - report.trackingSeconds;
            track_fps = report.frames / (icp_s * report.frames);
            overall_fps = report.frames /
                          (icp_s * report.frames + mapping_s);
        }

        table.addRow({slam::algorithmName(algo),
                      TablePrinter::num(run.ateRmse * 100),
                      TablePrinter::num(run.psnrDb, 1),
                      TablePrinter::num(track_fps, 2),
                      TablePrinter::num(overall_fps, 2),
                      TablePrinter::num(runtimeMemoryMb(run.peakBytes),
                                        2)});
    }
    table.print();
    std::printf("\nShape check vs paper Table 2: SplaTAM slowest overall; "
                "Photo-SLAM fastest tracking;\nall algorithms well below "
                "30 FPS -> motivates RTGS.\n");
    return 0;
}
