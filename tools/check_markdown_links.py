#!/usr/bin/env python3
"""Fail on dead intra-repo links in the repository's markdown files.

Scans every tracked-directory ``*.md`` for inline links, resolves
relative targets against the file's location, and exits non-zero if
any target file does not exist. External links (http/https/mailto),
pure same-file anchors, and image embeds (``![](...)`` — the scraped
paper dumps reference figures that were never retrieved) are skipped;
``path#fragment`` links are checked for the path part only. Fenced code blocks and inline code spans are
stripped before scanning so bracket-heavy code is never misread as a
link. Run from anywhere: ``python3 tools/check_markdown_links.py``.
"""

import os
import re
import sys

SKIP_DIRS = {".git", ".claude", "node_modules"}

LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.S)
CODE_RE = re.compile(r"`[^`]*`")


def markdown_files(repo):
    for root, dirs, files in os.walk(repo):
        dirs[:] = [
            d for d in dirs
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in files:
            if name.endswith(".md"):
                yield os.path.join(root, name)


def main():
    repo = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    checked_files = 0
    checked_links = 0
    bad = []
    for path in sorted(markdown_files(repo)):
        checked_files += 1
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        text = FENCE_RE.sub("", text)
        text = CODE_RE.sub("", text)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue  # same-file anchor
            checked_links += 1
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(resolved):
                bad.append("%s: dead link -> %s"
                           % (os.path.relpath(path, repo), target))
    print("checked %d intra-repo links across %d markdown files"
          % (checked_links, checked_files))
    if bad:
        print("\n".join(bad))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
