#!/usr/bin/env python3
"""Compare a freshly generated bench JSON against the committed one.

Usage:
    tools/bench_diff.py COMMITTED_JSON FRESH_JSON

The committed file records the perf trajectory the repo promises;
this script fails (exit 1) when the fresh run regresses it:

  * speedup-type fields (``*speedup*``) and larger-is-better fields
    (``*psnr_db``) may not fall below ``committed / 1.15`` — a >15%
    relative regression of the ratio or quality the field tracks;
  * quality-type fields (error bounds, ATE, reacquisition latency)
    may not *grow* beyond ``committed * 1.15 + eps`` — approximation
    error and recovery behavior are part of the contract, not a
    tunable;
  * boolean gates recorded as ``true`` in the committed file must
    still be ``true``.

Nested objects are flattened into dotted keys before comparison, and
lists whose elements carry a ``"name"`` field are keyed by it — so a
per-scenario record gates as ``scenarios.clean.ate_rmse`` no matter
where it sits in the array. Quality/floor classification matches on
the LEAF field name, so the same rules apply at any nesting depth.

Absolute millisecond fields are reported for context but never
gated: they measure the host, not the code. Fields present in only
one file are reported as informational (the committed file is
allowed to lag a PR that adds new fields). Negative committed values
are sentinels ("no measurement") and are never gated either.
"""

import json
import sys

# Fields measuring absolute host speed: report, never gate.
ABSOLUTE_HINTS = ("_ms", "_s", "wall", "cpu")
# Quality fields: smaller (or equal) is better, growth is a regression.
QUALITY_KEYS = {
    "max_abs_channel_diff",
    "backward_max_rel_grad_diff",
    "backward_seed_vs_f64_truth",
    "backward_rtgs_vs_f64_truth",
    "fastest_approx_psnr_drop_db",
}
# Leaf-name suffixes classified as quality (smaller is better) or as
# floor-gated (larger is better) wherever they appear in the tree.
QUALITY_SUFFIXES = ("ate_rmse", "reacquire_frames")
FLOOR_SUFFIXES = ("psnr_db",)
# Relative slack on gated comparisons (15%, per the CI contract), plus
# an absolute epsilon so zero-valued quality fields tolerate noise.
SLACK = 1.15
EPS = 1e-9


def load(path):
    with open(path) as fh:
        return json.load(fh)


def flatten(value, prefix=""):
    """Flatten nested dicts/lists into {dotted_key: scalar}.

    Lists of dicts that all carry a "name" field are keyed by that
    name (order-independent); other lists are keyed by index.
    """
    out = {}
    if isinstance(value, dict):
        for key, sub in value.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(sub, dotted))
    elif isinstance(value, list):
        named = all(isinstance(e, dict) and "name" in e for e in value)
        for idx, element in enumerate(value):
            label = element["name"] if named else str(idx)
            dotted = f"{prefix}.{label}" if prefix else str(label)
            if named:
                element = {k: v for k, v in element.items()
                           if k != "name"}
            out.update(flatten(element, dotted))
    else:
        out[prefix] = value
    return out


def leaf(key):
    return key.rsplit(".", 1)[-1]


def is_floor_gated(key):
    return "speedup" in leaf(key) or leaf(key).endswith(FLOOR_SUFFIXES)


def is_quality(key):
    return leaf(key) in QUALITY_KEYS or leaf(key).endswith(
        QUALITY_SUFFIXES)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2].strip())
        return 2
    committed = flatten(load(argv[1]))
    fresh = flatten(load(argv[2]))

    failures = []
    notes = []

    for key, old in sorted(committed.items()):
        if key not in fresh:
            notes.append(f"  - {key}: only in committed file")
            continue
        new = fresh[key]
        if isinstance(old, bool):
            if old and not new:
                failures.append(f"{key}: was true, now false")
            continue
        if not isinstance(old, (int, float)) or isinstance(old, bool):
            if old != new:
                notes.append(f"  ~ {key}: {old!r} -> {new!r}")
            continue
        if old < 0:
            # Negative committed values are "no measurement" sentinels
            # (e.g. a scenario without a post-fault tail window).
            notes.append(f"  info  {key}: {old} -> {new} (sentinel)")
            continue
        if is_floor_gated(key):
            floor = old / SLACK
            line = f"{key}: {old:.3f} -> {new:.3f} (floor {floor:.3f})"
            if new < floor:
                failures.append(line)
            else:
                notes.append(f"  ok  {line}")
        elif is_quality(key):
            ceil = old * SLACK + EPS
            line = f"{key}: {old:.3g} -> {new:.3g} (ceil {ceil:.3g})"
            if new > ceil:
                failures.append(line)
            else:
                notes.append(f"  ok  {line}")
        elif any(h in key for h in ABSOLUTE_HINTS):
            notes.append(f"  info  {key}: {old} -> {new} (not gated)")
        else:
            notes.append(f"  info  {key}: {old} -> {new}")

    for key in sorted(set(fresh) - set(committed)):
        notes.append(f"  + {key}: new field {fresh[key]!r}")

    print(f"bench_diff: {argv[1]} vs {argv[2]}")
    for n in notes:
        print(n)
    if failures:
        print("\nREGRESSIONS:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
