#!/usr/bin/env python3
"""Project-invariant linter: determinism and concurrency contracts.

The repo's determinism contracts (ROADMAP: sync-mode byte identity,
worker-count-independent reductions, byte-identical `precise` preset)
and its locking conventions are easy to break with changes that compile
cleanly and pass tests on one machine. This linter turns the contracts
into mechanical checks over the source tree:

  unordered-container   No iteration-ordered use of std::unordered_*
                        in determinism-contracted dirs (src/gs,
                        src/slam, src/core): hash-order leaks into
                        results.
  pointer-keyed         No std::map/std::set keyed by a raw pointer in
                        contracted dirs: address order varies run to
                        run.
  raw-random            rand()/srand()/std::random_device only inside
                        src/common/rng.* — everything else must draw
                        from the seeded project RNG.
  wall-clock            std::chrono::system_clock (wall time) only in
                        the profiler: wall time is not monotonic and
                        never belongs in pipeline logic.
  monotonic-clock       steady_clock/high_resolution_clock reads in
                        contracted dirs only through slam::Stopwatch
                        (src/slam/profiler.hh): timing reads are
                        allowed, scattered clock sites are not.
  atomic-float          No std::atomic<float/double/Real>: atomic
                        accumulation order is scheduling-dependent;
                        parallel reductions go through the fixed-block
                        helpers (ThreadPool::parallelForChunks +
                        block-ordered serial fold).
  unguarded-field       In a class that declares a `Mutex` member,
                        every data member declared after the first
                        Mutex must carry RTGS_GUARDED_BY(...) (other
                        Mutexes, condition_variables and ThreadAffinity
                        are exempt). Members the mutex does not guard
                        belong ABOVE it, or get an explicit allow
                        marker.
  cow-raw-access        In a class that defines assertFull() (the
                        CowColumn mixed-precision contract), every raw
                        buffer accessor (data/view/mut/begin/end/
                        operator[]) must call assertFull() before
                        touching storage.
  double-accum          No `double` arithmetic in the float row kernels
                        (src/gs/row_kernels*): precision drift between
                        rungs breaks the A/B ladder comparisons. The
                        faithfully-rounded exp is the sanctioned,
                        marker-delimited exception.
  tsan-filter           Every test file that uses ThreadPool /
                        MapWorker / BoundedQueue / FleetExecutor /
                        FleetRuntime / WorkStealingQueue must have at
                        least one test matched by the thread-sanitizer
                        job's --gtest_filter allowlist in ci.yml, so
                        new concurrency tests cannot silently dodge
                        TSan.
  global-pool           No globalPool() reference in the fleet layer
                        (src/slam/fleet_*): fleet code must run on the
                        injected shared executor; reaching for the
                        process-global pool reintroduces the hidden
                        cross-session coupling the fleet exists to
                        remove.

Escapes (sparingly, with a reason in the surrounding comment):

    // det-lint: allow(rule[, rule...])        this line + the next
    // det-lint: begin-allow(rule[, ...])      region start
    // det-lint: end-allow(rule[, ...])        region end

Usage:
    tools/determinism_lint.py [--root DIR]      lint the tree
    tools/determinism_lint.py --self-test       run the fixture suite
    tools/determinism_lint.py --use-libclang    AST-assisted checks
                                                (optional; needs the
                                                clang python bindings)

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import fnmatch
import os
import re
import sys

# Directories under the byte-determinism contract.
CONTRACT_DIRS = ("src/gs", "src/slam", "src/core")
# Sanctioned sites.
RNG_FILES = ("src/common/rng.hh", "src/common/rng.cc")
PROFILER_FILES = ("src/slam/profiler.hh", "src/slam/profiler.cc")
ROW_KERNEL_GLOB = "src/gs/row_kernels*"

ALL_RULES = (
    "unordered-container",
    "pointer-keyed",
    "raw-random",
    "wall-clock",
    "monotonic-clock",
    "atomic-float",
    "unguarded-field",
    "cow-raw-access",
    "double-accum",
    "tsan-filter",
    "global-pool",
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


# ---------------------------------------------------------------------
# Source model: comment/string-stripped lines + allow-marker map
# ---------------------------------------------------------------------

MARKER_RE = re.compile(
    r"det-lint:\s*(allow|begin-allow|end-allow)\(([^)]*)\)")


class SourceFile:
    """One parsed C++ file: code with comments and string literals
    blanked (so tokens in prose never trip a rule), plus the per-line
    set of rules the comments explicitly allow."""

    def __init__(self, path, text):
        self.path = path
        self.raw_lines = text.split("\n")
        self.code_lines = []
        self.allowed = {}  # line number (1-based) -> set of rules
        self._strip(text)

    def _mark(self, lineno, rules):
        self.allowed.setdefault(lineno, set()).update(rules)

    def _strip(self, text):
        open_regions = {}  # rule -> start line
        lines = text.split("\n")
        in_block = False
        for i, line in enumerate(lines, 1):
            comment_text = []
            out = []
            j = 0
            n = len(line)
            while j < n:
                if in_block:
                    end = line.find("*/", j)
                    if end < 0:
                        comment_text.append(line[j:])
                        j = n
                    else:
                        comment_text.append(line[j:end])
                        j = end + 2
                        in_block = False
                    continue
                c = line[j]
                nxt = line[j + 1] if j + 1 < n else ""
                if c == "/" and nxt == "/":
                    comment_text.append(line[j + 2:])
                    j = n
                elif c == "/" and nxt == "*":
                    in_block = True
                    j += 2
                elif c == '"' or c == "'":
                    quote = c
                    out.append(quote)
                    j += 1
                    while j < n:
                        if line[j] == "\\":
                            j += 2
                            continue
                        if line[j] == quote:
                            break
                        j += 1
                    out.append(quote)
                    j += 1
                else:
                    out.append(c)
                    j += 1
            self.code_lines.append("".join(out))
            for match in MARKER_RE.finditer(" ".join(comment_text)):
                kind = match.group(1)
                rules = {r.strip() for r in match.group(2).split(",")
                         if r.strip()}
                unknown = rules - set(ALL_RULES)
                if unknown:
                    raise ValueError(
                        "%s:%d: unknown det-lint rule(s): %s"
                        % (self.path, i, ", ".join(sorted(unknown))))
                if kind == "allow":
                    self._mark(i, rules)
                    self._mark(i + 1, rules)
                elif kind == "begin-allow":
                    for rule in rules:
                        open_regions[rule] = i
                elif kind == "end-allow":
                    for rule in rules:
                        start = open_regions.pop(rule, None)
                        if start is None:
                            raise ValueError(
                                "%s:%d: end-allow(%s) without begin"
                                % (self.path, i, rule))
                        for k in range(start, i + 1):
                            self._mark(k, {rule})
        if open_regions:
            rule, start = sorted(open_regions.items())[0]
            raise ValueError("%s:%d: begin-allow(%s) never closed"
                             % (self.path, start, rule))

    def allows(self, lineno, rule):
        return rule in self.allowed.get(lineno, set())


# ---------------------------------------------------------------------
# Per-file token rules
# ---------------------------------------------------------------------

UNORDERED_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")
PTR_KEYED_RE = re.compile(
    r"\bstd::(map|set|multimap|multiset)\s*<\s*(const\s+)?[A-Za-z_][\w:<>]*\s*\*")
RAW_RANDOM_RE = re.compile(
    r"\b(std::)?(rand|srand)\s*\(|\bstd::random_device\b|\bstd::mt19937")
WALL_CLOCK_RE = re.compile(r"\bsystem_clock\b|\btime\s*\(\s*(NULL|nullptr|0)?\s*\)")
MONO_CLOCK_RE = re.compile(r"\b(steady_clock|high_resolution_clock)\b")
ATOMIC_FLOAT_RE = re.compile(
    r"\bstd::atomic\s*<\s*(float|double|long\s+double|Real)\s*>")
DOUBLE_RE = re.compile(r"\bdouble\b|\b__m256d\b|_mm256_\w+_pd\b|\b_pd\b")
GLOBAL_POOL_RE = re.compile(r"\bglobalPool\s*\(")
FLEET_GLOB = "src/slam/fleet_*"

MUTEX_DECL_RE = re.compile(r"^\s*(mutable\s+)?(rtgs::)?Mutex\s+\w+_\s*;")
EXEMPT_MEMBER_RE = re.compile(
    r"std::condition_variable|ThreadAffinity|(^|\s)(mutable\s+)?(rtgs::)?Mutex\s")
MEMBER_DECL_RE = re.compile(r"^\s*[A-Za-z_].*\b\w+_\s*(=.*)?[;{]")
ACCESS_OR_SCOPE_RE = re.compile(
    r"^\s*(public|protected|private)\s*:|^\s*(class|struct)\s+\w+|^\s*};")
FUNC_HINT_RE = re.compile(r"\)\s*(const)?\s*(noexcept)?\s*({|;|=)")

RAW_ACCESSOR_NAMES = ("data", "view", "mut", "begin", "end", "operator[]")


def in_contract_dir(relpath):
    return any(relpath.startswith(d + "/") for d in CONTRACT_DIRS)


def lint_file(src, relpath):
    findings = []

    def hit(lineno, rule, message):
        if not src.allows(lineno, rule):
            findings.append(Finding(relpath, lineno, rule, message))

    contracted = in_contract_dir(relpath)
    is_rng = relpath in RNG_FILES
    is_profiler = relpath in PROFILER_FILES
    is_row_kernel = fnmatch.fnmatch(relpath, ROW_KERNEL_GLOB)
    is_fleet = fnmatch.fnmatch(relpath, FLEET_GLOB)

    for lineno, line in enumerate(src.code_lines, 1):
        if contracted and UNORDERED_RE.search(line):
            hit(lineno, "unordered-container",
                "unordered container in a determinism-contracted dir; "
                "hash order leaks into iteration — use std::map/std::set "
                "or sorted vectors")
        if contracted and PTR_KEYED_RE.search(line):
            hit(lineno, "pointer-keyed",
                "ordered container keyed by a raw pointer; address order "
                "varies run to run — key by a stable id instead")
        if not is_rng and RAW_RANDOM_RE.search(line):
            hit(lineno, "raw-random",
                "raw randomness outside src/common/rng.*; draw from the "
                "seeded project RNG so runs stay reproducible")
        if not is_profiler and WALL_CLOCK_RE.search(line):
            hit(lineno, "wall-clock",
                "wall-clock read outside the profiler; wall time is "
                "non-monotonic and never belongs in pipeline logic")
        if contracted and not is_profiler and MONO_CLOCK_RE.search(line):
            hit(lineno, "monotonic-clock",
                "direct monotonic-clock read in a determinism-contracted "
                "dir; time through slam::Stopwatch (src/slam/profiler.hh) "
                "so clock sites stay auditable")
        if ATOMIC_FLOAT_RE.search(line):
            hit(lineno, "atomic-float",
                "atomic floating-point accumulator; accumulation order "
                "depends on scheduling — reduce over fixed blocks "
                "(ThreadPool::parallelForChunks + serial block fold)")
        if is_fleet and GLOBAL_POOL_RE.search(line):
            hit(lineno, "global-pool",
                "globalPool() referenced from the fleet layer; fleet "
                "code runs on the injected shared executor — the "
                "process-global pool would couple sessions behind the "
                "scheduler's back")
        if is_row_kernel and DOUBLE_RE.search(line):
            hit(lineno, "double-accum",
                "double-precision arithmetic in a float row kernel; "
                "widening accumulators drifts the rung A/B contracts — "
                "keep kernels fp32 (see the sanctioned exp exception)")

    findings.extend(check_unguarded_fields(src, relpath))
    findings.extend(check_cow_raw_access(src, relpath))
    return findings


def check_unguarded_fields(src, relpath):
    """Member-ordering convention: after the first `Mutex foo_;` member
    of a class, every data member must be RTGS_GUARDED_BY-annotated (or
    exempt: Mutex / condition_variable / ThreadAffinity)."""
    if not relpath.endswith((".hh", ".h", ".hpp")):
        return []
    findings = []
    after_mutex = False
    stmt, stmt_start = "", 0
    for lineno, line in enumerate(src.code_lines, 1):
        if ACCESS_OR_SCOPE_RE.match(line):
            after_mutex = False
            stmt, stmt_start = "", 0
            continue
        if not stmt and MUTEX_DECL_RE.match(line):
            after_mutex = True
            continue
        if not after_mutex:
            continue
        if not stmt:
            if not MEMBER_DECL_RE.match(line):
                continue
            stmt_start = lineno
        stmt += " " + line.strip()
        if ";" not in line:
            continue  # declaration continues on the next line
        decl, stmt = stmt, ""
        if FUNC_HINT_RE.search(decl) and "RTGS_GUARDED_BY" not in decl:
            continue  # method declaration, not a field
        if EXEMPT_MEMBER_RE.search(decl):
            continue
        if "RTGS_GUARDED_BY" not in decl:
            if not (src.allows(stmt_start, "unguarded-field") or
                    src.allows(lineno, "unguarded-field")):
                findings.append(Finding(
                    relpath, stmt_start, "unguarded-field",
                    "member declared after a Mutex lacks "
                    "RTGS_GUARDED_BY; move it above the mutex if the "
                    "mutex does not guard it"))
    return findings


def check_cow_raw_access(src, relpath):
    """In a class defining assertFull(), raw-buffer accessors must call
    it before touching storage (the mixed-precision COW contract)."""
    text = "\n".join(src.code_lines)
    if not re.search(r"\bassertFull\s*\(\s*\)\s*const", text):
        return []
    findings = []
    accessor_re = re.compile(
        r"^\s*(?:typename\s+)?[\w:<>&*\s]*?\b"
        r"(data|view|mut|begin|end|operator\[\])\s*\([^)]*\)")
    lines = src.code_lines
    for lineno, line in enumerate(lines, 1):
        m = accessor_re.match(line)
        if not m or ";" in line:
            continue  # declaration only, or not a definition header
        # Function body: scan until brace depth returns to zero.
        depth = 0
        body = []
        started = False
        for k in range(lineno - 1, min(lineno + 30, len(lines))):
            body.append(lines[k])
            depth += lines[k].count("{") - lines[k].count("}")
            if "{" in lines[k]:
                started = True
            if started and depth <= 0:
                break
        body_text = "\n".join(body)
        touches = re.search(r"\bdata_|\bpacked_", body_text)
        if touches and "assertFull()" not in body_text:
            if not src.allows(lineno, "cow-raw-access"):
                findings.append(Finding(
                    relpath, lineno, "cow-raw-access",
                    "raw-buffer accessor %s() touches storage without "
                    "assertFull(); packed columns must never hand out "
                    "raw bits" % m.group(1)))
    return findings


# ---------------------------------------------------------------------
# Repo-level rule: TSan allowlist coverage
# ---------------------------------------------------------------------

CONCURRENCY_TOKEN_RE = re.compile(
    r"\bThreadPool\b|\bMapWorker\b|\bBoundedQueue\b|\bparallelForChunks\b|"
    r"\bFleetExecutor\b|\bFleetRuntime\b|\bWorkStealingQueue\b")
# Matched against the RAW text: the comment/string stripper blanks
# include paths (they are string literals).
CONCURRENCY_INCLUDE_RE = re.compile(
    r'#include\s+"(common/thread_pool|common/bounded_queue|'
    r'slam/map_worker|slam/fleet_executor|slam/fleet_runtime)\.hh"')
TEST_DECL_RE = re.compile(
    r"\bTEST(?:_F|_P)?\s*\(\s*([A-Za-z_]\w*)\s*,\s*([A-Za-z_]\w*)")
GTEST_FILTER_RE = re.compile(r"--gtest_filter=['\"]?([^'\"\s]+)")


def tsan_filter_patterns(ci_text):
    """Extract the --gtest_filter allowlist of the thread-sanitizer job
    (falls back to every filter in the file if the job moves)."""
    job = re.search(
        r"^  [\w-]*thread-sanitizer[\w-]*:.*?(?=^  [\w-]+:|\Z)",
        ci_text, re.M | re.S)
    scope = job.group(0) if job else ci_text
    patterns = []
    for m in GTEST_FILTER_RE.finditer(scope):
        patterns.extend(p for p in m.group(1).split(":") if p)
    return patterns


def check_tsan_coverage(ci_text, test_files):
    """test_files: {relpath: content}. Each file that exercises the
    concurrency layer must have >= 1 test matched by the TSan filter."""
    patterns = tsan_filter_patterns(ci_text)
    findings = []
    if not patterns:
        findings.append(Finding(
            ".github/workflows/ci.yml", 1, "tsan-filter",
            "no --gtest_filter found in the thread-sanitizer job; the "
            "concurrency allowlist has gone missing"))
        return findings
    for relpath, content in sorted(test_files.items()):
        src = SourceFile(relpath, content)
        code = "\n".join(src.code_lines)
        if not (CONCURRENCY_TOKEN_RE.search(code) or
                CONCURRENCY_INCLUDE_RE.search(content)):
            continue
        tests = TEST_DECL_RE.findall(code)
        if not tests:
            continue
        covered = False
        for suite, name in tests:
            # Plain id and a representative parameterized id: the
            # instantiation prefix is unknown statically, and allowlist
            # entries targeting TEST_P suites lead with '*'.
            for candidate in ("%s.%s" % (suite, name),
                              "X/%s.%s/0" % (suite, name)):
                if any(fnmatch.fnmatchcase(candidate, p)
                       for p in patterns):
                    covered = True
                    break
            if covered:
                break
        if not covered:
            findings.append(Finding(
                relpath, 1, "tsan-filter",
                "uses ThreadPool/MapWorker/BoundedQueue but no test in "
                "it matches the thread-sanitizer --gtest_filter "
                "allowlist in ci.yml; add its suite to the filter"))
    return findings


# ---------------------------------------------------------------------
# Optional libclang deep pass
# ---------------------------------------------------------------------

def libclang_pass(root):
    """AST-assisted double-check of the unordered-container rule using
    the clang python bindings, when available. Purely additive: the
    token rules above are authoritative and self-contained."""
    try:
        import clang.cindex  # noqa: F401
    except ImportError:
        print("determinism_lint: libclang bindings unavailable; "
              "skipping the AST pass (token rules already ran)",
              file=sys.stderr)
        return []
    from clang import cindex
    findings = []
    index = cindex.Index.create()
    for relpath in iter_source_files(root):
        if not in_contract_dir(relpath) or not relpath.endswith(".cc"):
            continue
        tu = index.parse(os.path.join(root, relpath),
                         args=["-std=c++17", "-I", os.path.join(root, "src")])
        for node in tu.cursor.walk_preorder():
            if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                rng = " ".join(t.spelling for t in node.get_tokens())
                if "unordered_" in rng:
                    findings.append(Finding(
                        relpath, node.location.line, "unordered-container",
                        "range-for over an unordered container (AST)"))
    return findings


# ---------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------

def iter_source_files(root):
    for base in ("src",):
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, base)):
            for name in sorted(filenames):
                if name.endswith((".cc", ".hh", ".h", ".hpp", ".cpp")):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def lint_tree(root, use_libclang=False):
    findings = []
    for relpath in iter_source_files(root):
        with open(os.path.join(root, relpath), encoding="utf-8") as fh:
            text = fh.read()
        try:
            src = SourceFile(relpath, text)
        except ValueError as err:
            findings.append(Finding(relpath, 1, "unguarded-field", str(err)))
            continue
        findings.extend(lint_file(src, relpath))

    ci_path = os.path.join(root, ".github", "workflows", "ci.yml")
    tests_dir = os.path.join(root, "tests")
    if os.path.isfile(ci_path) and os.path.isdir(tests_dir):
        with open(ci_path, encoding="utf-8") as fh:
            ci_text = fh.read()
        test_files = {}
        for name in sorted(os.listdir(tests_dir)):
            if name.endswith((".cc", ".cpp")):
                with open(os.path.join(tests_dir, name),
                          encoding="utf-8") as fh:
                    test_files["tests/" + name] = fh.read()
        findings.extend(check_tsan_coverage(ci_text, test_files))

    if use_libclang:
        findings.extend(libclang_pass(root))
    return findings


# ---------------------------------------------------------------------
# Self-test over the committed fixtures
# ---------------------------------------------------------------------

FIXTURE_PATH_RE = re.compile(r"det-lint-path:\s*(\S+)")
FIXTURE_EXPECT_RE = re.compile(r"det-lint-expect:\s*([\w-]+)")

SELFTEST_CI_OK = """
  thread-sanitizer:
    steps:
      - run: ./rtgs_tests --gtest_filter='ThreadPool.*:Queue.*'
  other-job:
    steps:
      - run: echo done
"""

SELFTEST_TEST_COVERED = """
#include "common/thread_pool.hh"
TEST(ThreadPool, RunsTasks) {}
"""

SELFTEST_TEST_UNCOVERED = """
#include "common/thread_pool.hh"
TEST(NewRaceSuite, StressesTheQueue) {}
"""

SELFTEST_CI_FLEET = """
  thread-sanitizer:
    steps:
      - run: ./rtgs_tests --gtest_filter='ThreadPool.*:FleetRuntime.*'
"""

SELFTEST_TEST_FLEET = """
#include "slam/fleet_runtime.hh"
TEST(FleetRuntime, SessionsStayIsolated) {}
"""


def run_self_test(root):
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    failures = []
    checked = 0
    for name in sorted(os.listdir(fixture_dir)):
        if not name.endswith((".cc", ".hh")):
            continue
        full = os.path.join(fixture_dir, name)
        with open(full, encoding="utf-8") as fh:
            text = fh.read()
        path_m = FIXTURE_PATH_RE.search(text)
        if not path_m:
            failures.append("%s: missing '// det-lint-path:' header" % name)
            continue
        pretend = path_m.group(1)
        expected = set(FIXTURE_EXPECT_RE.findall(text))
        try:
            src = SourceFile(pretend, text)
            got = {f.rule for f in lint_file(src, pretend)}
        except ValueError as err:
            got = {"unguarded-field"} if "det-lint" in str(err) else set()
        checked += 1
        missing = expected - got
        spurious = got - expected
        if missing:
            failures.append("%s: expected rule(s) did not fire: %s"
                            % (name, ", ".join(sorted(missing))))
        if spurious:
            failures.append("%s: unexpected rule(s) fired: %s"
                            % (name, ", ".join(sorted(spurious))))

    # tsan-filter is repo-level; exercise it on synthetic inputs.
    ok = check_tsan_coverage(SELFTEST_CI_OK,
                             {"tests/test_ok.cc": SELFTEST_TEST_COVERED})
    if ok:
        failures.append("tsan-filter: false positive on a covered file")
    bad = check_tsan_coverage(SELFTEST_CI_OK,
                              {"tests/test_bad.cc": SELFTEST_TEST_UNCOVERED})
    if not any(f.rule == "tsan-filter" for f in bad):
        failures.append("tsan-filter: missed an uncovered test file")
    # The fleet tokens joined the concurrency allowlist: a fleet test
    # file must be flagged when absent from the filter and pass when
    # its suite is listed.
    fleet_bad = check_tsan_coverage(
        SELFTEST_CI_OK, {"tests/test_fleet.cc": SELFTEST_TEST_FLEET})
    if not any(f.rule == "tsan-filter" for f in fleet_bad):
        failures.append("tsan-filter: missed an uncovered fleet test file")
    fleet_ok = check_tsan_coverage(
        SELFTEST_CI_FLEET, {"tests/test_fleet.cc": SELFTEST_TEST_FLEET})
    if fleet_ok:
        failures.append("tsan-filter: false positive on a covered "
                        "fleet test file")
    checked += 4

    if failures:
        for f in failures:
            print("self-test FAIL: %s" % f)
        return 1
    print("determinism_lint self-test: %d checks passed" % checked)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: the script's "
                             "grandparent directory)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite instead of linting")
    parser.add_argument("--use-libclang", action="store_true",
                        help="additionally run the AST-assisted pass "
                             "when the clang bindings are importable")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print("determinism_lint: no src/ under %s" % root, file=sys.stderr)
        return 2

    if args.self_test:
        return run_self_test(root)

    findings = lint_tree(root, use_libclang=args.use_libclang)
    for finding in findings:
        print(finding)
    if findings:
        print("determinism_lint: %d finding(s)" % len(findings))
        return 1
    print("determinism_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
