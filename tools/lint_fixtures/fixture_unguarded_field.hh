// det-lint-path: src/slam/fixture_unguarded_field.hh
// det-lint-expect: unguarded-field
//
// A member declared after the Mutex with no RTGS_GUARDED_BY: either the
// mutex guards it (annotate) or it does not (move it above the mutex).
#include <cstddef>

#define RTGS_GUARDED_BY(x)

class Mutex
{
};

class Ledger
{
  public:
    void add(std::size_t n);

  private:
    mutable Mutex mutex_;
    std::size_t guarded_ RTGS_GUARDED_BY(mutex_) = 0;
    std::size_t forgotten_ = 0;
};
