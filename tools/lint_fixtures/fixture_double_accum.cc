// det-lint-path: src/gs/row_kernels_fixture.cc
// det-lint-expect: double-accum
//
// Double-precision accumulation inside a float row kernel: the widened
// sum drifts away from the fp32 rungs and breaks the ladder A/B
// comparisons.
#include <cstddef>

float
rowSum(const float *row, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += row[i];
    return static_cast<float>(acc);
}
