// det-lint-path: src/slam/fixture_unordered.cc
// det-lint-expect: unordered-container
//
// Iterating an unordered container in a determinism-contracted dir:
// hash order leaks straight into the output order.
#include <string>
#include <unordered_map>

int
countEntries()
{
    std::unordered_map<std::string, int> counts;
    counts["a"] = 1;
    int total = 0;
    for (const auto &kv : counts)
        total += kv.second;
    return total;
}
