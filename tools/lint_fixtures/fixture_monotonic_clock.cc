// det-lint-path: src/gs/fixture_monotonic_clock.cc
// det-lint-expect: monotonic-clock
//
// A scattered steady_clock site in a contracted dir: timing belongs in
// slam::Stopwatch so every clock read stays auditable.
#include <chrono>

double
elapsed(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}
