// det-lint-path: src/slam/fixture_raw_random.cc
// det-lint-expect: raw-random
//
// Unseeded randomness outside src/common/rng.*: two runs of the same
// input diverge.
#include <cstdlib>
#include <random>

int
jitter()
{
    std::random_device rd;
    return static_cast<int>(rd()) + rand();
}
