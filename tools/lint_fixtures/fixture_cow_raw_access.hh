// det-lint-path: src/gs/fixture_cow_raw_access.hh
// det-lint-expect: cow-raw-access
//
// A raw-buffer accessor on a mixed-precision column that skips the
// full-precision assert: a packed column would hand out garbage bits.
#include <memory>
#include <vector>

template <typename T>
class MiniColumn
{
  public:
    const T *
    data() const
    {
        return data_->data();
    }

    void
    assertFull() const
    {
    }

  private:
    std::shared_ptr<std::vector<T>> data_;
};
