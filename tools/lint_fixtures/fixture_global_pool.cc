// det-lint-path: src/slam/fleet_bad_example.cc
// det-lint-expect: global-pool
//
// Fleet code reaching for the process-global thread pool: sessions
// hosted by the fleet must run every task on the injected shared
// executor, or scheduling escapes the fairness/backpressure contract
// and couples sessions behind the scheduler's back.
#include "common/thread_pool.hh"

namespace rtgs::slam
{

void
drainSomething()
{
    globalPool().post([] {});
}

} // namespace rtgs::slam
