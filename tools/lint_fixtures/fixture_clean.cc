// det-lint-path: src/slam/fixture_clean.cc
// (no expectations declared: this file must lint clean)
//
// Exercises the constructs the rules must NOT flag: ordered containers
// with value keys, prose mentions of rand() and steady_clock inside
// comments and string literals, and an explicit allow marker.
#include <atomic>
#include <map>
#include <string>

// Comments may discuss std::unordered_map, rand(), system_clock and
// double accumulators freely; only code trips the rules.

int
lookup(const std::map<std::string, int> &table, const std::string &key)
{
    const char *note = "steady_clock::now() inside a string literal";
    auto it = table.find(key);
    return it == table.end() ? static_cast<int>(note[0]) : it->second;
}

// Sanctioned escape hatch: a deliberate, documented exception.
// det-lint: allow(atomic-float)
std::atomic<float> g_debugGauge{0.0f};
