// det-lint-path: src/gs/fixture_atomic_float.cc
// det-lint-expect: atomic-float
//
// Atomic float accumulation: the summation order is whatever the
// scheduler did today. Reductions go through fixed-block helpers.
#include <atomic>
#include <cstddef>

float
sumAll(const float *values, std::size_t n)
{
    std::atomic<float> total{0.0f};
    for (std::size_t i = 0; i < n; ++i) {
        float cur = total.load();
        while (!total.compare_exchange_weak(cur, cur + values[i])) {
        }
    }
    return total.load();
}
