// det-lint-path: src/gs/fixture_pointer_keyed.cc
// det-lint-expect: pointer-keyed
//
// Ordering by raw pointer value: the iteration order is the allocator's
// mood, different every run.
#include <map>

struct Node
{
    int id;
};

int
firstId(const std::map<Node *, int> &ranks)
{
    return ranks.empty() ? -1 : ranks.begin()->first->id;
}
