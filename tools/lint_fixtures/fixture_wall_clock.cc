// det-lint-path: src/slam/fixture_wall_clock.cc
// det-lint-expect: wall-clock
//
// Wall-clock read in pipeline logic: NTP steps and DST make it
// non-monotonic, and it differs across machines by definition.
#include <chrono>

double
stampNow()
{
    auto now = std::chrono::system_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}
